//! The staged desynchronization pipeline.
//!
//! [`DesyncFlow`] decomposes the flow of the paper into five explicit,
//! individually inspectable stages:
//!
//! | stage | artifact | produced by |
//! |---|---|---|
//! | [`Stage::Clustered`] | [`ClusterGraph`] | flip-flop clustering |
//! | [`Stage::Latched`] | [`LatchDesign`] | master/slave latch conversion |
//! | [`Stage::Timed`] | [`TimingTable`] | STA + matched-delay sizing |
//! | [`Stage::Controlled`] | [`ControlNetwork`] | controller synthesis + timed marked-graph model |
//! | [`Stage::Verified`] | [`EquivalenceReport`] | gate-level co-simulation |
//!
//! Stages are computed lazily and cached: asking for a stage's artifact
//! ([`DesyncFlow::clustered`], [`DesyncFlow::timed`], …) runs every missing
//! predecessor exactly once. Changing an option mid-flow
//! ([`DesyncFlow::set_protocol`], [`DesyncFlow::set_margin`], …) drops only
//! the artifacts the change invalidates, so a protocol sweep re-runs
//! controller synthesis per protocol while clustering, latch conversion and
//! delay sizing are computed once. Matched-delay sizing — the hot path on
//! large cluster graphs — fans out across worker threads; the result is
//! bit-identical to the serial path because every cluster edge is sized
//! independently.
//!
//! [`DesyncFlow::report`] returns a [`FlowReport`] with per-stage run counts
//! and wall times, which the bench crate uses to attribute cost to stages.

use crate::cluster::{ClusterGraph, Parity};
use crate::controller::ControllerImpl;
use crate::conversion::{to_desynchronized_datapath, LatchDesign};
use crate::engine::{DesyncEngine, DesyncRuntime, EngineHandle};
use crate::error::DesyncError;
use crate::failpoints;
use crate::flow::DesyncDesign;
use crate::model::{ControlModel, EnvironmentSpec, ModelDelays};
use crate::options::{DesyncOptions, StagePrefix};
use crate::store::Fetched;
use crate::submit::{stage_trace, Interrupt};
use crate::verify::{
    packed_sync_reference_run_with_model, sim_config_from, sync_reference_run_with_model,
    verify_flow_equivalence_packed_with_parts, verify_flow_equivalence_with_parts,
    EquivalenceReport, MultiSeedReport,
};
use desync_lint::{lint_design, LintReport};
use desync_netlist::{CellLibrary, NetId, Netlist};
use desync_sim::{CompiledModel, PackedSimRun, PackedVectorSource, SimRun, VectorSource};
use desync_sta::{MatchedDelay, SizingPool, Sta, StaSnapshot, TimingConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The five stages of the desynchronization pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Flip-flops grouped into latch clusters ([`ClusterGraph`]).
    Clustered,
    /// Flip-flops split into master/slave latch pairs ([`LatchDesign`]).
    Latched,
    /// STA run and one matched delay sized per cluster edge
    /// ([`TimingTable`]).
    Timed,
    /// Handshake controllers generated and the timed marked-graph model
    /// composed and checked ([`ControlNetwork`]).
    Controlled,
    /// Flow equivalence against the synchronous reference established by
    /// gate-level co-simulation ([`EquivalenceReport`]).
    Verified,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 5] = [
        Stage::Clustered,
        Stage::Latched,
        Stage::Timed,
        Stage::Controlled,
        Stage::Verified,
    ];

    /// Position of the stage in the pipeline (0-based).
    pub fn index(self) -> usize {
        match self {
            Stage::Clustered => 0,
            Stage::Latched => 1,
            Stage::Timed => 2,
            Stage::Controlled => 3,
            Stage::Verified => 4,
        }
    }

    /// Short lower-case stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Clustered => "clustered",
            Stage::Latched => "latched",
            Stage::Timed => "timed",
            Stage::Controlled => "controlled",
            Stage::Verified => "verified",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The artifact of [`Stage::Timed`]: the synchronous clock period and one
/// sized matched delay (plus launch overhead) per cluster edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingTable {
    /// Minimum clock period of the synchronous baseline (from STA), ps.
    pub sync_clock_period_ps: f64,
    /// Matched delay sized for each cluster edge `(from, to)`.
    pub matched_delays: HashMap<(usize, usize), MatchedDelay>,
    /// Per cluster edge: the time from the source slave latch opening until
    /// its output carries the forwarded data item, ps.
    pub launch_overhead_ps: HashMap<(usize, usize), f64>,
    /// Delay budgets of the environment arcs. Always computed; whether the
    /// control model actually includes the environment controller pair is
    /// decided by the `environment` option at the [`Stage::Controlled`]
    /// transition, so toggling that knob does not re-run timing.
    pub environment: EnvironmentSpec,
}

impl TimingTable {
    /// Total delay cells across all matched-delay lines.
    pub fn total_delay_cells(&self) -> usize {
        self.matched_delays.values().map(|m| m.num_cells).sum()
    }

    /// The per-edge forward-arc delay budget handed to the control model:
    /// matched delay plus launch overhead.
    pub fn edge_delay_ps(&self) -> HashMap<(usize, usize), f64> {
        self.matched_delays
            .iter()
            .map(|(&edge, md)| {
                let launch = self.launch_overhead_ps.get(&edge).copied().unwrap_or(0.0);
                (edge, md.achieved_ps + launch)
            })
            .collect()
    }
}

/// The artifact of [`Stage::Controlled`]: the gate-level controller /
/// matched-delay overhead netlist and the timed marked-graph control model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlNetwork {
    /// Overhead netlist: handshake controllers (`ctl_*`) and matched delay
    /// lines (`md_*`), for area/power accounting.
    pub overhead: Netlist,
    /// The generated controllers (two per cluster).
    pub controllers: Vec<ControllerImpl>,
    /// The composed, timed marked-graph model (live and safe by
    /// construction; both are re-checked when the stage runs).
    pub model: ControlModel,
}

impl ControlNetwork {
    /// Total cells across all controllers.
    pub fn controller_cells(&self) -> usize {
        self.controllers.iter().map(ControllerImpl::num_cells).sum()
    }
}

impl crate::store::Weigh for TimingTable {
    /// Weight: one unit per sized edge, launch-overhead record and
    /// environment budget entry.
    fn weight(&self) -> usize {
        self.matched_delays.len()
            + self.launch_overhead_ps.len()
            + self.environment.input_delay_ps.len()
            + self.environment.output_delay_ps.len()
    }
}

impl crate::store::Weigh for ControlNetwork {
    /// Weight: the overhead netlist (cells and nets) plus the marked-graph
    /// model's transitions and places.
    fn weight(&self) -> usize {
        self.overhead.num_cells()
            + self.overhead.num_nets()
            + self.model.graph().num_transitions()
            + self.model.graph().num_places()
    }
}

/// Per-stage execution statistics of one [`DesyncFlow`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// The stage.
    pub stage: Stage,
    /// How many times the stage has executed over the flow's lifetime
    /// (greater than one after option changes invalidated it).
    pub runs: usize,
    /// How many times the stage was served from an attached
    /// [`DesyncEngine`]'s cross-flow cache instead of executing (always zero
    /// for detached flows).
    pub cache_hits: usize,
    /// Wall time of the most recent execution.
    pub last_wall: Duration,
    /// Wall time summed over all executions.
    pub total_wall: Duration,
    /// Whether the stage's artifact is currently cached (not invalidated).
    pub cached: bool,
}

/// Execution statistics and headline artifact numbers of a [`DesyncFlow`],
/// for benchmark logs and reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Name of the netlist under desynchronization.
    pub netlist: String,
    /// One entry per stage, in execution order.
    pub stages: Vec<StageReport>,
    /// Number of clusters, once [`Stage::Clustered`] has run.
    pub clusters: Option<usize>,
    /// Number of cluster edges, once [`Stage::Clustered`] has run.
    pub cluster_edges: Option<usize>,
    /// Latches in the converted datapath, once [`Stage::Latched`] has run.
    pub latches: Option<usize>,
    /// Total matched-delay cells, once [`Stage::Timed`] has run.
    pub matched_delay_cells: Option<usize>,
    /// Synchronous clock period (ps), once [`Stage::Timed`] has run.
    pub sync_period_ps: Option<f64>,
    /// Desynchronized cycle time (ps), once [`Stage::Controlled`] has run.
    pub cycle_time_ps: Option<f64>,
    /// Flow-equivalence verdict, once [`Stage::Verified`] has run.
    pub flow_equivalent: Option<bool>,
    /// How many verifications reused a cached synchronous reference run
    /// (see [`DesyncFlow::sync_run_cache_hits`]).
    pub sync_run_cache_hits: usize,
    /// How many simulations reused an already compiled simulation model
    /// (see [`DesyncFlow::compiled_model_cache_hits`]).
    pub compiled_model_cache_hits: usize,
    /// How many Timed executions only re-bound matched delays from a cached
    /// sizing analysis (see [`DesyncFlow::sizing_rebinds`]).
    pub sizing_rebinds: usize,
}

impl FlowReport {
    /// Wall time summed over every stage execution of the flow's lifetime.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.total_wall).sum()
    }
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flow report for `{}`", self.netlist)?;
        writeln!(
            f,
            "  {:<12} {:>5} {:>5} {:>12} {:>12}  artifact",
            "stage", "runs", "hits", "last [us]", "total [us]"
        )?;
        for s in &self.stages {
            let artifact = match s.stage {
                Stage::Clustered => match (self.clusters, self.cluster_edges) {
                    (Some(c), Some(e)) => format!("{c} clusters, {e} edges"),
                    _ => "—".into(),
                },
                Stage::Latched => self
                    .latches
                    .map(|l| format!("{l} latches"))
                    .unwrap_or_else(|| "—".into()),
                Stage::Timed => match (self.matched_delay_cells, self.sync_period_ps) {
                    (Some(c), Some(p)) => format!("{c} delay cells, sync period {p:.1} ps"),
                    _ => "—".into(),
                },
                Stage::Controlled => self
                    .cycle_time_ps
                    .map(|c| format!("cycle time {c:.1} ps"))
                    .unwrap_or_else(|| "—".into()),
                Stage::Verified => self
                    .flow_equivalent
                    .map(|eq| format!("flow equivalent: {eq}"))
                    .unwrap_or_else(|| "—".into()),
            };
            let stale = if s.cached || (s.runs == 0 && s.cache_hits == 0) {
                ""
            } else {
                " (stale)"
            };
            writeln!(
                f,
                "  {:<12} {:>5} {:>5} {:>12} {:>12}  {}{}",
                s.stage.name(),
                s.runs,
                s.cache_hits,
                s.last_wall.as_micros(),
                s.total_wall.as_micros(),
                artifact,
                stale,
            )?;
        }
        write!(f, "  total wall time: {} us", self.total_wall().as_micros())
    }
}

/// The staged desynchronization pipeline, bound to one netlist and library.
///
/// See the [module documentation](self) for the stage/artifact table. The
/// one-call convenience wrapper is
/// [`Desynchronizer`](crate::Desynchronizer), which is equivalent to
/// creating a flow and immediately asking for [`DesyncFlow::design`].
///
/// # Example
///
/// ```
/// use desync_core::{DesyncFlow, DesyncOptions, Protocol};
/// use desync_netlist::{CellKind, CellLibrary, Netlist};
///
/// # fn main() -> Result<(), desync_core::DesyncError> {
/// let mut n = Netlist::new("pipe");
/// let clk = n.add_input("clk");
/// let a = n.add_input("a");
/// let q0 = n.add_net("q0");
/// let w = n.add_net("w");
/// let q1 = n.add_output("q1");
/// n.add_dff("r0", a, clk, q0).unwrap();
/// n.add_gate("g0", CellKind::Not, &[q0], w).unwrap();
/// n.add_dff("r1", w, clk, q1).unwrap();
/// let library = CellLibrary::generic_90nm();
///
/// let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default())?;
/// // Inspect intermediate artifacts stage by stage.
/// assert_eq!(flow.clustered()?.len(), 2);
/// assert!(flow.timed()?.sync_clock_period_ps > 0.0);
/// // Changing the protocol re-runs only controller synthesis.
/// flow.set_protocol(Protocol::NonOverlapping)?;
/// let design = flow.design()?;
/// assert!(design.control_model().is_live());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DesyncFlow<'a> {
    netlist: &'a Netlist,
    library: &'a CellLibrary,
    options: DesyncOptions,
    engine: Option<EngineHandle<'a>>,
    /// The interrupt condition (cancellation + deadline) checked at every
    /// stage boundary; defaults to never firing for plain flows.
    interrupt: Interrupt,
    stimulus: Option<VectorSource>,
    verify_cycles: usize,
    /// Per-flow memo of the synchronous reference run for detached flows
    /// (engine-attached flows use the engine's cross-flow cache instead).
    /// Keyed on everything the run depends on besides the flow-fixed
    /// netlist and library, so a stale entry can never be served.
    sync_memo: Option<(SyncMemoKey, Arc<SimRun>)>,
    /// Detached-flow memo of the packed (multi-lane) synchronous reference
    /// run — the campaign-path sibling of `sync_memo`, additionally keyed
    /// on the lane count.
    packed_sync_memo: Option<(PackedSyncMemoKey, Arc<PackedSimRun>)>,
    /// Detached-flow memo of the compiled synchronous simulation model,
    /// keyed by the `SimConfig` bits.
    sync_model_memo: Option<([u64; 3], Arc<CompiledModel>)>,
    /// Detached-flow memo of the compiled desynchronized-datapath model,
    /// keyed by the latch-structure prefix and the `SimConfig` bits.
    async_model_memo: Option<(AsyncModelKey, Arc<CompiledModel>)>,
    /// Detached-flow memo of the margin-independent sizing analysis.
    sizing_memo: Option<(StagePrefix, Arc<SizingAnalysis>)>,
    sync_run_hits: usize,
    compiled_model_hits: usize,
    sizing_rebinds: usize,
    /// The pre-flight lint report (computed once per flow; engine-attached
    /// flows share it across flows through the cross-flow store).
    lint: Option<Arc<LintReport>>,
    lint_hits: usize,
    clustered: Option<Arc<ClusterGraph>>,
    latched: Option<Arc<LatchDesign>>,
    timed: Option<Arc<TimingTable>>,
    controlled: Option<Arc<ControlNetwork>>,
    assembled: Option<DesyncDesign>,
    verified: Option<EquivalenceReport>,
    runs: [usize; 5],
    cache_hits: [usize; 5],
    last_wall: [Duration; 5],
    total_wall: [Duration; 5],
}

impl<'a> DesyncFlow<'a> {
    /// Default number of captures compared by [`DesyncFlow::verified`] when
    /// [`DesyncFlow::set_verification`] was not called.
    pub const DEFAULT_VERIFY_CYCLES: usize = 16;

    /// Creates a flow over `netlist` with validated `options`.
    ///
    /// No stage runs yet; stages execute lazily on first access.
    ///
    /// # Errors
    ///
    /// [`DesyncError::InvalidOptions`] when a knob fails
    /// [`DesyncOptions::validate`].
    pub fn new(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        options: DesyncOptions,
    ) -> Result<Self, DesyncError> {
        Self::build(netlist, library, options, None)
    }

    /// Creates a flow attached to a [`DesyncEngine`]: every construction
    /// stage first consults the engine's cross-flow artifact cache
    /// (publishing its artifact on a miss), and matched-delay sizing runs on
    /// the engine's persistent worker pool. [`DesyncEngine::flow`] is the
    /// ergonomic spelling of the same call.
    ///
    /// The produced artifacts and [`DesyncDesign`] are identical to a
    /// detached flow's — the engine only changes *where* they come from.
    /// Per-flow cache hits are visible through [`DesyncFlow::cache_hits`]
    /// and the [`FlowReport`].
    ///
    /// # Errors
    ///
    /// [`DesyncError::InvalidOptions`] when a knob fails
    /// [`DesyncOptions::validate`].
    pub fn with_engine(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        options: DesyncOptions,
        engine: &'a DesyncEngine,
    ) -> Result<Self, DesyncError> {
        Self::build(netlist, library, options, Some(engine))
    }

    fn build(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        options: DesyncOptions,
        engine: Option<&'a DesyncEngine>,
    ) -> Result<Self, DesyncError> {
        options.validate()?;
        Ok(Self {
            netlist,
            library,
            options,
            engine: engine.map(|e| e.attach(netlist, library)),
            interrupt: Interrupt::none(),
            stimulus: None,
            verify_cycles: Self::DEFAULT_VERIFY_CYCLES,
            sync_memo: None,
            packed_sync_memo: None,
            sync_model_memo: None,
            async_model_memo: None,
            sizing_memo: None,
            sync_run_hits: 0,
            compiled_model_hits: 0,
            sizing_rebinds: 0,
            lint: None,
            lint_hits: 0,
            clustered: None,
            latched: None,
            timed: None,
            controlled: None,
            assembled: None,
            verified: None,
            runs: [0; 5],
            cache_hits: [0; 5],
            last_wall: [Duration::ZERO; 5],
            total_wall: [Duration::ZERO; 5],
        })
    }

    /// The netlist under desynchronization.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// The cell library in use.
    pub fn library(&self) -> &'a CellLibrary {
        self.library
    }

    /// The options currently in effect.
    pub fn options(&self) -> &DesyncOptions {
        &self.options
    }

    // ---- option changes and invalidation --------------------------------

    /// Replaces the whole option set, invalidating exactly the stages whose
    /// inputs changed (see the table on [`DesyncOptions`]). Cached artifacts
    /// of earlier stages survive and are reused on the next access.
    ///
    /// # Errors
    ///
    /// [`DesyncError::InvalidOptions`] when the new options fail
    /// [`DesyncOptions::validate`]; the flow keeps its previous options and
    /// artifacts in that case.
    pub fn set_options(&mut self, options: DesyncOptions) -> Result<&mut Self, DesyncError> {
        options.validate()?;
        if let Some(stage) = earliest_invalidated(&self.options, &options) {
            self.invalidate_from(stage);
        } else if options != self.options {
            // No stage consumes the changed knobs (parallel_sizing), but the
            // assembled design embeds the option set verbatim — drop only
            // the assembly so design() reports the current knobs. All stage
            // artifacts survive; reassembly is a handful of clones.
            self.assembled = None;
        }
        self.options = options;
        Ok(self)
    }

    /// Changes the clustering strategy (invalidates from
    /// [`Stage::Clustered`]).
    ///
    /// # Errors
    ///
    /// See [`DesyncFlow::set_options`].
    pub fn set_clustering(
        &mut self,
        clustering: crate::options::ClusteringStrategy,
    ) -> Result<&mut Self, DesyncError> {
        self.set_options(self.options.with_clustering(clustering))
    }

    /// Changes the matched-delay margin (invalidates from [`Stage::Timed`]).
    ///
    /// # Errors
    ///
    /// See [`DesyncFlow::set_options`].
    pub fn set_margin(&mut self, margin: f64) -> Result<&mut Self, DesyncError> {
        self.set_options(self.options.with_margin(margin))
    }

    /// Changes the handshake protocol (invalidates from
    /// [`Stage::Controlled`]).
    ///
    /// # Errors
    ///
    /// See [`DesyncFlow::set_options`].
    pub fn set_protocol(
        &mut self,
        protocol: crate::controller::Protocol,
    ) -> Result<&mut Self, DesyncError> {
        self.set_options(self.options.with_protocol(protocol))
    }

    /// Enables or disables the explicit environment model (invalidates from
    /// [`Stage::Controlled`] — the environment delay budgets are always
    /// computed by the timing stage; the knob only controls whether the
    /// control model includes the environment controller pair).
    ///
    /// # Errors
    ///
    /// See [`DesyncFlow::set_options`].
    pub fn set_environment(&mut self, environment: bool) -> Result<&mut Self, DesyncError> {
        self.set_options(self.options.with_environment(environment))
    }

    /// Changes the timing parameters (invalidates from [`Stage::Timed`]).
    ///
    /// # Errors
    ///
    /// See [`DesyncFlow::set_options`].
    pub fn set_timing(&mut self, timing: TimingConfig) -> Result<&mut Self, DesyncError> {
        self.set_options(self.options.with_timing(timing))
    }

    /// Sets the stimulus and capture count used by [`DesyncFlow::verified`]
    /// (invalidates only [`Stage::Verified`]).
    ///
    /// Required before [`DesyncFlow::verified`] on any netlist with data
    /// inputs; self-stimulating circuits (clock as the only input, like
    /// counters) may skip it.
    pub fn set_verification(&mut self, stimulus: VectorSource, cycles: usize) -> &mut Self {
        self.stimulus = Some(stimulus);
        self.verify_cycles = cycles;
        self.invalidate_from(Stage::Verified);
        self
    }

    /// Attaches an [`Interrupt`] (cancellation token and/or deadline) to the
    /// flow. Every stage accessor checks it at entry — i.e. at stage
    /// *boundaries* — and returns [`DesyncError::Cancelled`] /
    /// [`DesyncError::DeadlineExceeded`] instead of computing further.
    /// Cancellation is cooperative: a stage already executing runs to
    /// completion (and its artifact may still be published to an attached
    /// engine, where it benefits other requests).
    ///
    /// [`ServiceQueue`](crate::ServiceQueue) sets this on every request's
    /// flow; plain flows default to an interrupt that never fires.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) -> &mut Self {
        self.interrupt = interrupt;
        self
    }

    /// Drops the cached artifacts of `stage` and every later stage; they are
    /// recomputed on next access.
    pub fn invalidate_from(&mut self, stage: Stage) {
        if stage <= Stage::Clustered {
            self.clustered = None;
        }
        if stage <= Stage::Latched {
            self.latched = None;
        }
        if stage <= Stage::Timed {
            self.timed = None;
        }
        if stage <= Stage::Controlled {
            self.controlled = None;
            self.assembled = None;
        }
        self.verified = None;
    }

    /// The deepest stage whose artifact is currently cached, or `None`
    /// before any stage has run.
    pub fn computed_through(&self) -> Option<Stage> {
        if self.verified.is_some() {
            Some(Stage::Verified)
        } else if self.controlled.is_some() {
            Some(Stage::Controlled)
        } else if self.timed.is_some() {
            Some(Stage::Timed)
        } else if self.latched.is_some() {
            Some(Stage::Latched)
        } else if self.clustered.is_some() {
            Some(Stage::Clustered)
        } else {
            None
        }
    }

    /// How many times `stage` has executed over the flow's lifetime.
    ///
    /// A stage served from an attached engine's cache does **not** count as
    /// a run — see [`DesyncFlow::cache_hits`].
    pub fn stage_runs(&self, stage: Stage) -> usize {
        self.runs[stage.index()]
    }

    /// How many times `stage` was served from the attached
    /// [`DesyncEngine`]'s cross-flow cache instead of executing.
    ///
    /// Always zero for detached flows and for [`Stage::Verified`] (which is
    /// never cached).
    pub fn cache_hits(&self, stage: Stage) -> usize {
        self.cache_hits[stage.index()]
    }

    // ---- stage accessors ------------------------------------------------

    /// The static pre-flight lint report for the input netlist, running the
    /// full `desync-lint` design suite
    /// ([`lint_design`](desync_lint::lint_design)) on first access.
    ///
    /// The report is a pure function of the netlist alone (options are
    /// validated separately when the flow is constructed), so
    /// engine-attached flows cache it in the cross-flow store under the
    /// interned netlist identity — a service admitting many requests over
    /// the same design lints it exactly once. Detached flows memoize it per
    /// flow.
    ///
    /// The accessor itself never fails on a dirty design; callers decide
    /// what the report means. [`DesyncService`](crate::DesyncService)
    /// rejects designs whose report is not
    /// [clean](LintReport::is_clean) with [`DesyncError::LintRejected`]
    /// before any stage computes. The construction stages keep their own
    /// per-stage error behaviour for direct flow users.
    ///
    /// # Errors
    ///
    /// This pre-flight itself cannot fail; the `Result` keeps the accessor
    /// signatures uniform across stages.
    pub fn lint(&mut self) -> Result<Arc<LintReport>, DesyncError> {
        if self.lint.is_none() {
            self.interrupt.check()?;
            let netlist = self.netlist;
            let report = match self.engine {
                Some(handle) => {
                    let key = handle.lint_key();
                    let (report, how) =
                        handle.lint_or(key, || Ok(Arc::new(lint_design(netlist))))?;
                    if how.served() {
                        self.lint_hits += 1;
                    }
                    report
                }
                None => Arc::new(lint_design(netlist)),
            };
            self.lint = Some(report);
        }
        Ok(Arc::clone(self.lint.as_ref().expect("just computed")))
    }

    /// How many times the attached engine served this flow's lint report
    /// from the cross-flow store instead of running the pass suites (always
    /// zero for detached flows).
    pub fn lint_cache_hits(&self) -> usize {
        self.lint_hits
    }

    /// The cluster graph, running [`Stage::Clustered`] if needed.
    ///
    /// # Errors
    ///
    /// This stage itself cannot fail; the `Result` keeps the accessor
    /// signatures uniform across stages.
    pub fn clustered(&mut self) -> Result<&ClusterGraph, DesyncError> {
        if self.clustered.is_none() {
            self.interrupt.check()?;
            stage_trace::enter("clustered");
            let netlist = self.netlist;
            let clustering = self.options.clustering;
            let graph = match self.engine {
                Some(handle) => {
                    let key = handle.stage_key(&self.options, Stage::Clustered);
                    let mut elapsed = None;
                    let (graph, how) = handle.clustered_or(key, || {
                        failpoints::hit("stage::clustered")?;
                        let started = Instant::now();
                        let graph = Arc::new(ClusterGraph::build(netlist, clustering));
                        elapsed = Some(started.elapsed());
                        Ok(graph)
                    })?;
                    self.note(Stage::Clustered, how, elapsed);
                    graph
                }
                None => {
                    failpoints::hit("stage::clustered")?;
                    let started = Instant::now();
                    let graph = Arc::new(ClusterGraph::build(netlist, clustering));
                    self.record(Stage::Clustered, started);
                    graph
                }
            };
            self.clustered = Some(graph);
        }
        Ok(self.clustered.as_deref().expect("just computed"))
    }

    /// The latch-converted datapath, running stages through
    /// [`Stage::Latched`] if needed.
    ///
    /// # Errors
    ///
    /// [`DesyncError::Netlist`] / [`DesyncError::NoRegisters`] /
    /// [`DesyncError::AlreadyLatchBased`] when the input netlist is not a
    /// valid single-clock flip-flop design.
    pub fn latched(&mut self) -> Result<&LatchDesign, DesyncError> {
        if self.latched.is_none() {
            self.clustered()?;
            self.interrupt.check()?;
            stage_trace::enter("latched");
            let netlist = self.netlist;
            let clusters = Arc::clone(self.clustered.as_ref().expect("clustered stage ran"));
            let design = match self.engine {
                Some(handle) => {
                    let key = handle.stage_key(&self.options, Stage::Latched);
                    let mut elapsed = None;
                    let (design, how) = handle.latched_or(key, || {
                        failpoints::hit("stage::latched")?;
                        let started = Instant::now();
                        let design = to_desynchronized_datapath(netlist, &clusters)?;
                        elapsed = Some(started.elapsed());
                        Ok(Arc::new(design))
                    })?;
                    self.note(Stage::Latched, how, elapsed);
                    design
                }
                None => {
                    failpoints::hit("stage::latched")?;
                    let started = Instant::now();
                    let design = to_desynchronized_datapath(netlist, &clusters)?;
                    self.record(Stage::Latched, started);
                    Arc::new(design)
                }
            };
            self.latched = Some(design);
        }
        Ok(self.latched.as_deref().expect("just computed"))
    }

    /// The timing table, running stages through [`Stage::Timed`] if needed.
    ///
    /// The stage is internally split: the expensive arrival-time
    /// propagation lives in a margin-independent [`SizingAnalysis`]
    /// (engine-cached, or memoized per flow when detached), and the margin
    /// knob only *re-binds* matched delays from it — so a margin sweep runs
    /// STA once per netlist structure ([`DesyncFlow::sizing_rebinds`]
    /// counts the cheap bindings).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DesyncFlow::latched`].
    pub fn timed(&mut self) -> Result<&TimingTable, DesyncError> {
        if self.timed.is_none() {
            self.latched()?;
            self.interrupt.check()?;
            stage_trace::enter("timed");
            let netlist = self.netlist;
            let library = self.library;
            let options = self.options;
            let clusters = Arc::clone(self.clustered.as_ref().expect("clustered stage ran"));
            // Parallel sizing runs on a persistent pool: the attached
            // engine's own pool, or the process-wide one for detached flows.
            let parallel = options.parallel_sizing && clusters.len() > 1;
            match self.engine {
                Some(handle) => {
                    let key = handle.stage_key(&options, Stage::Timed);
                    let mut elapsed = None;
                    let mut rebound = false;
                    let (table, how) = handle.timed_or(key, || {
                        failpoints::hit("stage::timed")?;
                        let started = Instant::now();
                        let analysis_key = handle.sizing_key(options.sizing_analysis_prefix());
                        let (analysis, analysis_how) = handle.sizing_or(analysis_key, || {
                            let pool = parallel.then(|| handle.pool());
                            Ok(Arc::new(compute_sizing_analysis(
                                netlist, library, &clusters, &options, pool,
                            )))
                        })?;
                        rebound = analysis_how.served();
                        let table = Arc::new(bind_timing(&analysis, &options, library));
                        elapsed = Some(started.elapsed());
                        Ok(table)
                    })?;
                    if rebound {
                        self.sizing_rebinds += 1;
                    }
                    self.note(Stage::Timed, how, elapsed);
                    self.timed = Some(table);
                }
                None => {
                    failpoints::hit("stage::timed")?;
                    let prefix = options.sizing_analysis_prefix();
                    let memo = self
                        .sizing_memo
                        .as_ref()
                        .filter(|(key, _)| *key == prefix)
                        .map(|(_, analysis)| Arc::clone(analysis));
                    let started = Instant::now();
                    let analysis = match memo {
                        Some(hit) => {
                            self.sizing_rebinds += 1;
                            hit
                        }
                        None => {
                            let pool = parallel.then(|| DesyncRuntime::global().pool());
                            let analysis = Arc::new(compute_sizing_analysis(
                                netlist, library, &clusters, &options, pool,
                            ));
                            self.sizing_memo = Some((prefix, Arc::clone(&analysis)));
                            analysis
                        }
                    };
                    let table = Arc::new(bind_timing(&analysis, &options, library));
                    self.record(Stage::Timed, started);
                    self.timed = Some(table);
                }
            }
        }
        Ok(self.timed.as_deref().expect("just computed"))
    }

    /// The controller network and control model, running stages through
    /// [`Stage::Controlled`] if needed.
    ///
    /// # Errors
    ///
    /// Earlier-stage errors, plus [`DesyncError::ModelCheck`] when the
    /// composed model fails the liveness or safeness check (an internal
    /// error — the construction is correct by design for valid inputs).
    pub fn controlled(&mut self) -> Result<&ControlNetwork, DesyncError> {
        if self.controlled.is_none() {
            self.timed()?;
            self.interrupt.check()?;
            stage_trace::enter("controlled");
            let netlist = self.netlist;
            let options = self.options;
            let clusters = Arc::clone(self.clustered.as_ref().expect("clustered stage ran"));
            let timing = Arc::clone(self.timed.as_ref().expect("timed stage ran"));
            let network = match self.engine {
                Some(handle) => {
                    let key = handle.stage_key(&options, Stage::Controlled);
                    let mut elapsed = None;
                    let (network, how) = handle.controlled_or(key, || {
                        failpoints::hit("stage::controlled")?;
                        let started = Instant::now();
                        let network = build_control_network(netlist, &clusters, &timing, &options)?;
                        elapsed = Some(started.elapsed());
                        Ok(Arc::new(network))
                    })?;
                    self.note(Stage::Controlled, how, elapsed);
                    network
                }
                None => {
                    failpoints::hit("stage::controlled")?;
                    let started = Instant::now();
                    let network = build_control_network(netlist, &clusters, &timing, &options)?;
                    self.record(Stage::Controlled, started);
                    Arc::new(network)
                }
            };
            self.controlled = Some(network);
        }
        Ok(self.controlled.as_deref().expect("just computed"))
    }

    /// The flow-equivalence report, running stages through
    /// [`Stage::Verified`] if needed.
    ///
    /// Uses the stimulus and capture count from
    /// [`DesyncFlow::set_verification`]. A netlist whose only primary input
    /// is the clock (a counter, an LFSR) may skip `set_verification`; it is
    /// then checked over [`DesyncFlow::DEFAULT_VERIFY_CYCLES`] captures with
    /// no input vectors.
    ///
    /// # Errors
    ///
    /// Earlier-stage errors, plus:
    ///
    /// * [`DesyncError::MissingStimulus`] when the netlist has data inputs
    ///   but no stimulus was configured — without input vectors the
    ///   equivalence check would pass vacuously.
    /// * [`DesyncError::Netlist`] when the co-simulation testbench rejects
    ///   the netlist.
    pub fn verified(&mut self) -> Result<&EquivalenceReport, DesyncError> {
        if self.verified.is_none() {
            self.ensure_assembled()?;
            self.interrupt.check()?;
            stage_trace::enter("verified");
            if self.stimulus.is_none() {
                // Surface a clock problem as its own diagnostic instead of
                // swallowing it (the old `single_clock().ok()` made every
                // input of a multi-clock netlist — the clocks included —
                // count as a data input and reported `MissingStimulus`).
                // Today the Latched stage already rejects multi-clock
                // netlists before this line can run, so this is
                // defense-in-depth: it keeps the diagnostic correct even if
                // stage construction (e.g. cross-flow artifact sourcing)
                // ever stops funnelling through the conversion check.
                let clock = self.netlist.single_clock().map_err(DesyncError::Netlist)?;
                let has_data_inputs = self.netlist.inputs().iter().any(|&n| n != clock);
                if has_data_inputs {
                    return Err(DesyncError::MissingStimulus);
                }
            }
            let stimulus = self
                .stimulus
                .clone()
                .unwrap_or_else(|| VectorSource::constant(vec![]));
            let started = Instant::now();
            let reference = self.sync_reference(&stimulus)?;
            let async_model = self.async_model()?;
            let design = self.assembled.as_ref().expect("assembled above");
            let report = verify_flow_equivalence_with_parts(
                self.netlist,
                design,
                &stimulus,
                self.verify_cycles,
                (*reference).clone(),
                &async_model,
            )?;
            // The commit boundary: both simulations ran and agreed, the
            // report is about to become the flow's verified artifact.
            failpoints::hit("sim::commit")?;
            self.record(Stage::Verified, started);
            self.verified = Some(report);
        }
        Ok(self.verified.as_ref().expect("just computed"))
    }

    /// Packed multi-seed flow-equivalence verification: one bit-parallel
    /// co-simulation carries up to 64 independent stimulus lanes through
    /// [`Stage::Verified`] and returns a per-lane verdict.
    ///
    /// The packed kernel's event schedule is stimulus-independent under
    /// matched delays, so the whole campaign costs roughly one scalar
    /// verification; every lane's verdict is bit-identical to running
    /// [`DesyncFlow::verified`] with that lane's scalar stimulus. Unlike
    /// `verified`, the report is returned by value and not cached on the
    /// flow — campaigns own their reports, and the scalar
    /// [`EquivalenceReport`] stays the flow's verified artifact.
    ///
    /// # Errors
    ///
    /// Earlier-stage errors, plus [`DesyncError::Netlist`] when a
    /// co-simulation testbench rejects the netlist.
    pub fn verify_packed(
        &mut self,
        stimulus: &PackedVectorSource,
        cycles: usize,
    ) -> Result<MultiSeedReport, DesyncError> {
        self.ensure_assembled()?;
        self.interrupt.check()?;
        stage_trace::enter("verified");
        let started = Instant::now();
        let reference = self.packed_sync_reference(stimulus, cycles)?;
        let async_model = self.async_model()?;
        let design = self.assembled.as_ref().expect("assembled above");
        let report = verify_flow_equivalence_packed_with_parts(
            self.netlist,
            design,
            stimulus,
            cycles,
            &reference,
            &async_model,
        )?;
        // One packed commit verifies all lanes: the failpoint fires once
        // per campaign point, not once per lane.
        failpoints::hit("sim::commit")?;
        self.record(Stage::Verified, started);
        Ok(report)
    }

    /// The synchronous reference run for the current verification inputs:
    /// served from the attached engine's cross-flow cache, from the per-flow
    /// memo (detached flows), or freshly simulated (and then published).
    ///
    /// The cache key covers everything the run is a function of — netlist
    /// and library identity, the simulation config, the STA clock period,
    /// the capture count and the stimulus digest — so protocol and margin
    /// sweeps, which change none of these, simulate the sync side once.
    /// When the run does have to simulate, the synchronous netlist's
    /// compiled model comes from its own cache tier.
    fn sync_reference(&mut self, stimulus: &VectorSource) -> Result<Arc<SimRun>, DesyncError> {
        let config = sim_config_from(&self.options.timing);
        let period_ps = self
            .timed
            .as_ref()
            .expect("timed stage ran before verify")
            .sync_clock_period_ps;
        let cycles = self.verify_cycles;
        let digest = stimulus.content_digest();
        let netlist = self.netlist;
        let library = self.library;
        match self.engine {
            Some(handle) => {
                let key = handle.sync_run_key(config, period_ps, cycles, digest);
                let mut model_served = false;
                let (run, how) = handle.sync_run_or(key, || {
                    let model_key = handle.compiled_key(None, config);
                    let (model, model_how) = handle.compiled_or(model_key, || {
                        Ok(Arc::new(CompiledModel::compile(netlist, library, config)))
                    })?;
                    model_served = model_how.served();
                    let run =
                        sync_reference_run_with_model(netlist, &model, period_ps, cycles, stimulus)
                            .map_err(DesyncError::Netlist)?;
                    Ok(Arc::new(run))
                })?;
                if model_served {
                    self.compiled_model_hits += 1;
                }
                if how.served() {
                    self.sync_run_hits += 1;
                }
                Ok(run)
            }
            None => {
                let memo_key: SyncMemoKey =
                    (config.key_bits(), period_ps.to_bits(), cycles, digest);
                if let Some((key, run)) = &self.sync_memo {
                    if *key == memo_key {
                        self.sync_run_hits += 1;
                        return Ok(Arc::clone(run));
                    }
                }
                let model = match &self.sync_model_memo {
                    Some((bits, model)) if *bits == config.key_bits() => {
                        self.compiled_model_hits += 1;
                        Arc::clone(model)
                    }
                    _ => {
                        let model = Arc::new(CompiledModel::compile(netlist, library, config));
                        self.sync_model_memo = Some((config.key_bits(), Arc::clone(&model)));
                        model
                    }
                };
                let run = Arc::new(
                    sync_reference_run_with_model(netlist, &model, period_ps, cycles, stimulus)
                        .map_err(DesyncError::Netlist)?,
                );
                self.sync_memo = Some((memo_key, Arc::clone(&run)));
                Ok(run)
            }
        }
    }

    /// The packed synchronous reference run: the campaign-path sibling of
    /// [`DesyncFlow::sync_reference`], sharing the scalar path's compiled
    /// synchronous model tier (the topology does not depend on how many
    /// stimulus lanes ride through it) but keyed additionally on the lane
    /// count and the packed stimulus digest.
    fn packed_sync_reference(
        &mut self,
        stimulus: &PackedVectorSource,
        cycles: usize,
    ) -> Result<Arc<PackedSimRun>, DesyncError> {
        let config = sim_config_from(&self.options.timing);
        let period_ps = self
            .timed
            .as_ref()
            .expect("timed stage ran before verify")
            .sync_clock_period_ps;
        let digest = stimulus.content_digest();
        let lanes = stimulus.lanes() as u32;
        let netlist = self.netlist;
        let library = self.library;
        match self.engine {
            Some(handle) => {
                let key = handle.packed_sync_run_key(config, period_ps, cycles, digest, lanes);
                let mut model_served = false;
                let (run, how) = handle.packed_sync_run_or(key, || {
                    let model_key = handle.compiled_key(None, config);
                    let (model, model_how) = handle.compiled_or(model_key, || {
                        Ok(Arc::new(CompiledModel::compile(netlist, library, config)))
                    })?;
                    model_served = model_how.served();
                    let run = packed_sync_reference_run_with_model(
                        netlist, &model, period_ps, cycles, stimulus,
                    )
                    .map_err(DesyncError::Netlist)?;
                    Ok(Arc::new(run))
                })?;
                if model_served {
                    self.compiled_model_hits += 1;
                }
                if how.served() {
                    self.sync_run_hits += 1;
                }
                Ok(run)
            }
            None => {
                let memo_key: PackedSyncMemoKey = (
                    config.key_bits(),
                    period_ps.to_bits(),
                    cycles,
                    digest,
                    lanes,
                );
                if let Some((key, run)) = &self.packed_sync_memo {
                    if *key == memo_key {
                        self.sync_run_hits += 1;
                        return Ok(Arc::clone(run));
                    }
                }
                let model = match &self.sync_model_memo {
                    Some((bits, model)) if *bits == config.key_bits() => {
                        self.compiled_model_hits += 1;
                        Arc::clone(model)
                    }
                    _ => {
                        let model = Arc::new(CompiledModel::compile(netlist, library, config));
                        self.sync_model_memo = Some((config.key_bits(), Arc::clone(&model)));
                        model
                    }
                };
                let run = Arc::new(
                    packed_sync_reference_run_with_model(
                        netlist, &model, period_ps, cycles, stimulus,
                    )
                    .map_err(DesyncError::Netlist)?,
                );
                self.packed_sync_memo = Some((memo_key, Arc::clone(&run)));
                Ok(run)
            }
        }
    }

    /// The compiled model of the desynchronized datapath (the latch
    /// netlist): every sweep point over one design shares it — protocol and
    /// margin affect only the enable schedule that is *bound* onto the
    /// model, never the datapath structure the model compiles.
    fn async_model(&mut self) -> Result<Arc<CompiledModel>, DesyncError> {
        let config = sim_config_from(&self.options.timing);
        let prefix = self.options.stage_prefix(Stage::Latched);
        let library = self.library;
        match self.engine {
            Some(handle) => {
                let key = handle.compiled_key(Some(prefix), config);
                let design = self.assembled.as_ref().expect("assembled before verify");
                let (model, how) = handle.compiled_or(key, || {
                    Ok(Arc::new(CompiledModel::compile(
                        design.latch_netlist(),
                        library,
                        config,
                    )))
                })?;
                if how.served() {
                    self.compiled_model_hits += 1;
                }
                Ok(model)
            }
            None => {
                let memo_key = (prefix, config.key_bits());
                if let Some((key, model)) = &self.async_model_memo {
                    if *key == memo_key {
                        self.compiled_model_hits += 1;
                        return Ok(Arc::clone(model));
                    }
                }
                let model = {
                    let design = self.assembled.as_ref().expect("assembled before verify");
                    Arc::new(CompiledModel::compile(
                        design.latch_netlist(),
                        library,
                        config,
                    ))
                };
                self.async_model_memo = Some((memo_key, Arc::clone(&model)));
                Ok(model)
            }
        }
    }

    /// How many times [`DesyncFlow::verified`] reused a cached synchronous
    /// reference run (engine cache or per-flow memo) instead of
    /// re-simulating the sync side.
    pub fn sync_run_cache_hits(&self) -> usize {
        self.sync_run_hits
    }

    /// How many times a simulation needed by [`DesyncFlow::verified`]
    /// reused an already compiled [`CompiledModel`] (engine cache or
    /// per-flow memo) instead of recompiling the topology.
    pub fn compiled_model_cache_hits(&self) -> usize {
        self.compiled_model_hits
    }

    /// How many [`Stage::Timed`] executions were served by *re-binding*
    /// matched delays from a cached margin-independent [`SizingAnalysis`]
    /// instead of re-running arrival propagation.
    pub fn sizing_rebinds(&self) -> usize {
        self.sizing_rebinds
    }

    /// Assembles a [`DesyncDesign`] from the cached artifacts, running
    /// stages through [`Stage::Controlled`] if needed.
    ///
    /// The result is identical to what
    /// [`Desynchronizer::run`](crate::Desynchronizer::run) returns for the
    /// same netlist, library and options. The assembled design is cached
    /// (and invalidated together with [`Stage::Controlled`]), so this method
    /// performs one clone per call; use [`DesyncFlow::designed`] when a
    /// reference is enough.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DesyncFlow::controlled`].
    pub fn design(&mut self) -> Result<DesyncDesign, DesyncError> {
        self.ensure_assembled()?;
        Ok(self.assembled.clone().expect("just assembled"))
    }

    /// Borrows the assembled [`DesyncDesign`] without cloning it, running
    /// stages through [`Stage::Controlled`] if needed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DesyncFlow::controlled`].
    pub fn designed(&mut self) -> Result<&DesyncDesign, DesyncError> {
        self.ensure_assembled()?;
        Ok(self.assembled.as_ref().expect("just assembled"))
    }

    fn ensure_assembled(&mut self) -> Result<(), DesyncError> {
        if self.assembled.is_some() {
            return Ok(());
        }
        self.controlled()?;
        let clusters = self.clustered.as_deref().expect("clustered stage ran");
        let latched = self.latched.as_deref().expect("latched stage ran");
        let timing = self.timed.as_deref().expect("timed stage ran");
        let network = self.controlled.as_deref().expect("controlled stage ran");
        self.assembled = Some(DesyncDesign::from_parts(
            self.netlist.name().to_string(),
            self.options,
            clusters.clone(),
            latched.clone(),
            network.overhead.clone(),
            network.controllers.clone(),
            timing.matched_delays.clone(),
            network.model.clone(),
            timing.sync_clock_period_ps,
        ));
        Ok(())
    }

    /// Per-stage execution statistics and headline artifact numbers.
    pub fn report(&self) -> FlowReport {
        let stages = Stage::ALL
            .iter()
            .map(|&stage| StageReport {
                stage,
                runs: self.runs[stage.index()],
                cache_hits: self.cache_hits[stage.index()],
                last_wall: self.last_wall[stage.index()],
                total_wall: self.total_wall[stage.index()],
                cached: match stage {
                    Stage::Clustered => self.clustered.is_some(),
                    Stage::Latched => self.latched.is_some(),
                    Stage::Timed => self.timed.is_some(),
                    Stage::Controlled => self.controlled.is_some(),
                    Stage::Verified => self.verified.is_some(),
                },
            })
            .collect();
        FlowReport {
            netlist: self.netlist.name().to_string(),
            stages,
            clusters: self.clustered.as_deref().map(ClusterGraph::len),
            cluster_edges: self.clustered.as_deref().map(|c| c.edges.len()),
            latches: self.latched.as_deref().map(|l| l.netlist.num_latches()),
            matched_delay_cells: self.timed.as_deref().map(TimingTable::total_delay_cells),
            sync_period_ps: self.timed.as_deref().map(|t| t.sync_clock_period_ps),
            cycle_time_ps: self.controlled.as_deref().map(|c| c.model.cycle_time_ps()),
            flow_equivalent: self.verified.as_ref().map(EquivalenceReport::is_equivalent),
            sync_run_cache_hits: self.sync_run_hits,
            compiled_model_cache_hits: self.compiled_model_hits,
            sizing_rebinds: self.sizing_rebinds,
        }
    }

    fn record(&mut self, stage: Stage, started: Instant) {
        self.record_elapsed(stage, started.elapsed());
    }

    fn record_elapsed(&mut self, stage: Stage, elapsed: Duration) {
        let i = stage.index();
        self.runs[i] += 1;
        self.last_wall[i] = elapsed;
        self.total_wall[i] += elapsed;
    }

    /// Books an engine-served stage access: a hit (resident or coalesced
    /// onto another flow's computation) counts as a cache hit; a
    /// computation counts as a run with the wall time measured inside the
    /// compute closure.
    fn note(&mut self, stage: Stage, how: Fetched, elapsed: Option<Duration>) {
        if how.served() {
            self.cache_hits[stage.index()] += 1;
        } else {
            let elapsed = elapsed.expect("computed stages record their wall time");
            self.record_elapsed(stage, elapsed);
        }
    }
}

/// Key of a detached flow's synchronous-reference memo: `(SimConfig bits,
/// period bits, cycles, stimulus digest)` — the netlist and library are
/// fixed for the flow's lifetime and need no representation.
type SyncMemoKey = ([u64; 3], u64, usize, u64);

/// Key of a detached flow's *packed* synchronous-reference memo: the scalar
/// key grown by the lane count, exactly like the engine's sim-key facet.
type PackedSyncMemoKey = ([u64; 3], u64, usize, u64, u32);

/// Key of a detached flow's compiled-datapath-model memo: the
/// latch-structure ([`Stage::Latched`]) prefix plus the `SimConfig` bits.
type AsyncModelKey = (StagePrefix, [u64; 3]);

/// The earliest stage whose inputs differ between two option sets.
///
/// Defined in terms of [`DesyncOptions::stage_prefix`] — the same canonical
/// knob → stage mapping that forms the options half of the
/// [`DesyncEngine`] cache keys, so flow invalidation and cross-flow cache
/// validity cannot drift apart.
fn earliest_invalidated(old: &DesyncOptions, new: &DesyncOptions) -> Option<Stage> {
    Stage::ALL
        .into_iter()
        .find(|&stage| old.stage_prefix(stage) != new.stage_prefix(stage))
}

// ---- Stage::Timed ------------------------------------------------------

/// One matched-delay sizing job: a source cluster with at least one
/// successor. Fully owned (no borrows of the netlist or analyzer), so jobs
/// can be moved onto the persistent pool's long-lived worker threads. The
/// serial path runs the very same jobs in source order, so there is exactly
/// one sizing implementation to keep correct.
struct SourceSizingJob {
    src_idx: usize,
    /// Output nets of the source cluster's registers, in register order.
    src_outputs: Vec<NetId>,
    /// Launch overhead shared by every outgoing edge of the source.
    launch_ps: f64,
    /// Per successor cluster: its index and the data nets of its registers,
    /// in register order (the same order the serial path folds over).
    targets: Vec<(usize, Vec<NetId>)>,
}

/// Builds one [`SourceSizingJob`] per source cluster with successors.
fn build_sizing_jobs(
    netlist: &Netlist,
    clusters: &ClusterGraph,
    fanout: &[usize],
    options: &DesyncOptions,
) -> Vec<SourceSizingJob> {
    (0..clusters.len())
        .filter_map(|src_idx| {
            let targets: Vec<(usize, Vec<NetId>)> = clusters
                .edges
                .iter()
                .filter(|e| e.from == src_idx)
                .map(|e| {
                    let dst = &clusters.clusters[e.to];
                    let data_nets = dst
                        .registers
                        .iter()
                        .filter_map(|&reg| netlist.cell(reg).data_net())
                        .collect();
                    (e.to, data_nets)
                })
                .collect();
            if targets.is_empty() {
                return None;
            }
            let src = &clusters.clusters[src_idx];
            let src_outputs: Vec<NetId> = src
                .registers
                .iter()
                .map(|&r| netlist.cell(r).output)
                .collect();
            // Launch overhead: the time from the source slave latch opening
            // until its output carries the forwarded data item. In the worst
            // case the master latch captured its data right at its closing
            // edge, so the item still has to traverse the master latch (one
            // latch delay plus the wire to the slave) and then the slave
            // latch itself (one latch delay plus the wire load of its
            // possibly high fan-out output net).
            let max_fanout = src_outputs
                .iter()
                .map(|n| fanout[n.index()])
                .max()
                .unwrap_or(1)
                .max(1);
            let launch_ps = 2.0 * options.timing.latch_d_to_q_ps
                + options.timing.wire_delay_per_fanout_ps * (1 + max_fanout) as f64;
            Some(SourceSizingJob {
                src_idx,
                src_outputs,
                launch_ps,
                targets,
            })
        })
        .collect()
}

/// Executes one sizing job against an owned arrival snapshot, producing the
/// worst-case combinational arrival per outgoing edge (margin-free — the
/// margin is applied later by [`bind_timing`]).
///
/// Both the serial and the pooled path run this exact function;
/// [`StaSnapshot::arrival_from`] replays [`Sta::arrival_from`] bit-for-bit
/// (asserted by a test in `desync-sta`), so scheduling cannot change a
/// single bit of the result.
fn run_sizing_job(snapshot: &StaSnapshot, job: &SourceSizingJob) -> Vec<AnalyzedEdge> {
    let arrival = snapshot.arrival_from(&job.src_outputs);
    job.targets
        .iter()
        .map(|(dst_idx, data_nets)| {
            let mut worst = 0.0_f64;
            for net in data_nets {
                if let Some(a) = arrival[net.index()] {
                    worst = worst.max(a);
                }
            }
            ((job.src_idx, *dst_idx), worst, job.launch_ps)
        })
        .collect()
}

/// One analyzed cluster edge: `((from, to), worst arrival, launch
/// overhead)`.
type AnalyzedEdge = ((usize, usize), f64, f64);
/// A sizing task handed to the persistent pool.
type SizingTask = Box<dyn FnOnce() -> Vec<AnalyzedEdge> + Send>;

/// The margin-independent half of [`Stage::Timed`]: the results of every
/// arrival-time propagation the stage needs, each edge and environment arc
/// carried as a **zero-margin matched delay** — the chain sized to cover
/// exactly the worst combinational arrival, with no safety margin applied
/// yet — plus launch overheads and the synchronous clock period.
///
/// A margin sweep shares one analysis per netlist structure and derives
/// each point's [`TimingTable`] through [`bind_timing`], which
/// [`MatchedDelay::rebind`]s every base delay to the point's margin —
/// bit-identical to a from-scratch timing run at that margin (rebinding
/// re-sizes from the recorded combinational delay through the same
/// [`MatchedDelay::for_delay`] arithmetic). [`DesyncEngine`] caches
/// analyses under the margin-stripped Timed prefix; detached flows keep a
/// per-flow memo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizingAnalysis {
    /// Minimum clock period of the synchronous baseline (from STA), ps.
    pub sync_clock_period_ps: f64,
    /// Zero-margin matched delay per cluster edge `(from, to)` (its
    /// `combinational_ps` is the edge's worst arrival).
    pub edge_base: HashMap<(usize, usize), MatchedDelay>,
    /// Launch overhead per cluster edge (see [`SourceSizingJob`]), ps.
    pub launch_overhead_ps: HashMap<(usize, usize), f64>,
    /// Zero-margin matched delay of the primary-input → register-data path
    /// per input-fed cluster.
    pub env_input_base: HashMap<usize, MatchedDelay>,
    /// Zero-margin matched delay of the register → primary-output path per
    /// output-feeding cluster.
    pub env_output_base: HashMap<usize, MatchedDelay>,
}

impl crate::store::Weigh for SizingAnalysis {
    /// Weight: one unit per analyzed edge and environment record.
    fn weight(&self) -> usize {
        self.edge_base.len()
            + self.launch_overhead_ps.len()
            + self.env_input_base.len()
            + self.env_output_base.len()
    }
}

/// Runs every arrival-time propagation of [`Stage::Timed`]: STA, one
/// per-source-cluster job (optionally fanned out over the persistent
/// sizing pool — bit-identical either way, every edge is independent) and
/// the environment arcs. The result is margin-free; see [`bind_timing`].
fn compute_sizing_analysis(
    netlist: &Netlist,
    library: &CellLibrary,
    clusters: &ClusterGraph,
    options: &DesyncOptions,
    pool: Option<&SizingPool>,
) -> SizingAnalysis {
    let sta = Sta::new(netlist, library, options.timing);
    let sync_clock_period_ps = sta.clock_period();
    let fanout = netlist.fanout_map();

    let jobs = build_sizing_jobs(netlist, clusters, &fanout, options);
    let snapshot = sta.snapshot();
    let analyzed: Vec<AnalyzedEdge> = match pool {
        Some(pool) => {
            // Fan the per-source jobs out over the persistent worker pool.
            // The jobs own their inputs (an arrival snapshot plus per-source
            // net lists) and every edge is analyzed independently, so the
            // merged result is bit-identical regardless of scheduling.
            let snapshot = Arc::new(snapshot);
            // Pool tasks hop threads: capture the request tag here so the
            // dispatch failpoint still matches on the worker thread.
            let tag = failpoints::current_tag();
            let tasks: Vec<SizingTask> = jobs
                .into_iter()
                .map(|job| {
                    let snapshot = Arc::clone(&snapshot);
                    Box::new(move || {
                        failpoints::hit_in_pool("pool::dispatch", tag);
                        run_sizing_job(&snapshot, &job)
                    }) as SizingTask
                })
                .collect();
            pool.run(tasks).into_iter().flatten().collect()
        }
        None => jobs
            .iter()
            .flat_map(|job| run_sizing_job(&snapshot, job))
            .collect(),
    };

    let mut edge_base = HashMap::with_capacity(analyzed.len());
    let mut launch_overhead_ps = HashMap::with_capacity(analyzed.len());
    for (edge, worst, launch) in analyzed {
        edge_base.insert(edge, MatchedDelay::for_delay(worst, 0.0, library));
        launch_overhead_ps.insert(edge, launch);
    }

    // Environment arcs (the paper's auxiliary arcs): the worst arrival for
    // data travelling from the primary inputs into each input-fed cluster,
    // and from each output-feeding cluster to the primary outputs. Computed
    // unconditionally so toggling `options.environment` (consumed at the
    // Controlled transition) never invalidates this stage.
    let mut env_input_base = HashMap::new();
    let mut env_output_base = HashMap::new();
    let input_arrival = sta.arrival_from(netlist.inputs());
    for (idx, cluster) in clusters.clusters.iter().enumerate() {
        if !clusters.input_fed[idx] {
            continue;
        }
        let mut worst = 0.0_f64;
        for &reg in &cluster.registers {
            if let Some(d) = netlist.cell(reg).data_net() {
                if let Some(a) = input_arrival[d.index()] {
                    worst = worst.max(a);
                }
            }
        }
        env_input_base.insert(idx, MatchedDelay::for_delay(worst, 0.0, library));
    }
    for (idx, cluster) in clusters.clusters.iter().enumerate() {
        if !clusters.output_feeding[idx] {
            continue;
        }
        let outputs: Vec<_> = cluster
            .registers
            .iter()
            .map(|&r| netlist.cell(r).output)
            .collect();
        let arrival = sta.arrival_from(&outputs);
        let worst = netlist
            .outputs()
            .iter()
            .filter_map(|&o| arrival[o.index()])
            .fold(0.0, f64::max);
        env_output_base.insert(idx, MatchedDelay::for_delay(worst, 0.0, library));
    }

    SizingAnalysis {
        sync_clock_period_ps,
        edge_base,
        launch_overhead_ps,
        env_input_base,
        env_output_base,
    }
}

/// Binds a [`SizingAnalysis`] to a concrete matched-delay margin:
/// [`MatchedDelay::rebind`]s every zero-margin base chain to the margin.
/// This is the cheap, margin-dependent half of [`Stage::Timed`] — a rebind
/// re-sizes from the recorded combinational delay through the same
/// arithmetic the unsplit stage applied, so the produced [`TimingTable`]
/// is bit-identical to a from-scratch run.
fn bind_timing(
    analysis: &SizingAnalysis,
    options: &DesyncOptions,
    library: &CellLibrary,
) -> TimingTable {
    let margin = options.matched_delay_margin;
    let matched_delays = analysis
        .edge_base
        .iter()
        .map(|(&edge, base)| (edge, base.rebind(margin, library)))
        .collect();
    let mut environment = EnvironmentSpec::default();
    for (&idx, base) in &analysis.env_input_base {
        let matched = base.rebind(margin, library);
        environment
            .input_delay_ps
            .insert(idx, matched.achieved_ps + options.timing.latch_d_to_q_ps);
    }
    for (&idx, base) in &analysis.env_output_base {
        let matched = base.rebind(margin, library);
        environment.output_delay_ps.insert(
            idx,
            matched.achieved_ps
                + 2.0 * options.timing.latch_d_to_q_ps
                + options.timing.wire_delay_per_fanout_ps,
        );
    }
    TimingTable {
        sync_clock_period_ps: analysis.sync_clock_period_ps,
        matched_delays,
        launch_overhead_ps: analysis.launch_overhead_ps.clone(),
        environment,
    }
}

// ---- Stage::Controlled -------------------------------------------------

fn build_control_network(
    netlist: &Netlist,
    clusters: &ClusterGraph,
    timing: &TimingTable,
    options: &DesyncOptions,
) -> Result<ControlNetwork, DesyncError> {
    // Gate-level controllers and matched-delay chains (the overhead netlist
    // used for area/power accounting).
    let mut overhead = Netlist::new(format!("{}_overhead", netlist.name()));
    let mut controllers = Vec::new();
    for cluster in &clusters.clusters {
        for parity in [Parity::Even, Parity::Odd] {
            let ctl = ControllerImpl::generate(
                &mut overhead,
                &cluster.name,
                parity,
                options.protocol,
                cluster.len(),
            )?;
            controllers.push(ctl);
        }
    }
    // One physical delay line per destination cluster, sized for its worst
    // incoming combinational block (the controller of the destination
    // combines the requests of all predecessors with a C-element and delays
    // the combined request once).
    let mut worst_per_destination: HashMap<usize, MatchedDelay> = HashMap::new();
    for (&(_, dst), matched) in &timing.matched_delays {
        let entry = worst_per_destination.entry(dst).or_insert(*matched);
        if matched.achieved_ps > entry.achieved_ps {
            *entry = *matched;
        }
    }
    let mut destinations: Vec<usize> = worst_per_destination.keys().copied().collect();
    destinations.sort_unstable();
    for dst in destinations {
        let matched = worst_per_destination[&dst];
        let prefix = format!("md_{}", clusters.clusters[dst].name);
        let req = overhead.add_input(format!("{prefix}_req"));
        let out = matched.instantiate(&mut overhead, &prefix, req)?;
        overhead.mark_output(out);
    }
    overhead.validate().map_err(DesyncError::Netlist)?;

    // The timed marked-graph control model.
    let model_delays = ModelDelays {
        controller_ps: options.controller_delay_ps,
        latch_ps: options.timing.latch_d_to_q_ps,
        pulse_width_ps: options.timing.latch_d_to_q_ps + options.controller_delay_ps,
    };
    let environment = options.environment.then_some(&timing.environment);
    let model = ControlModel::build_with_environment(
        clusters,
        options.protocol,
        &timing.edge_delay_ps(),
        environment,
        model_delays,
    );
    if !model.is_live() {
        return Err(DesyncError::ModelCheck(
            "composed control model is not live".into(),
        ));
    }
    if !model.is_safe() {
        return Err(DesyncError::ModelCheck(
            "composed control model is not safe".into(),
        ));
    }
    Ok(ControlNetwork {
        overhead,
        controllers,
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Protocol;
    use crate::flow::Desynchronizer;
    use crate::options::ClusteringStrategy;
    use desync_netlist::CellKind;

    fn pipeline3() -> Netlist {
        let mut n = Netlist::new("pipe3");
        let clk = n.add_input("clk");
        let a = n.add_input("a");
        let q0 = n.add_net("q0");
        let w0 = n.add_net("w0");
        let q1 = n.add_net("q1");
        let w1 = n.add_net("w1");
        let q2 = n.add_output("q2");
        n.add_dff("r0", a, clk, q0).unwrap();
        n.add_gate("g0", CellKind::Not, &[q0], w0).unwrap();
        n.add_dff("r1", w0, clk, q1).unwrap();
        n.add_gate("g1", CellKind::Buf, &[q1], w1).unwrap();
        n.add_dff("r2", w1, clk, q2).unwrap();
        n
    }

    fn lib() -> CellLibrary {
        CellLibrary::generic_90nm()
    }

    #[test]
    fn stages_run_lazily_and_exactly_once() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        assert_eq!(flow.computed_through(), None);
        for stage in Stage::ALL {
            assert_eq!(flow.stage_runs(stage), 0);
        }
        // Asking for the deepest stage runs every predecessor exactly once.
        flow.controlled().unwrap();
        assert_eq!(flow.computed_through(), Some(Stage::Controlled));
        for stage in [
            Stage::Clustered,
            Stage::Latched,
            Stage::Timed,
            Stage::Controlled,
        ] {
            assert_eq!(flow.stage_runs(stage), 1, "{stage}");
        }
        assert_eq!(flow.stage_runs(Stage::Verified), 0);
        // Re-access hits the cache.
        flow.clustered().unwrap();
        flow.timed().unwrap();
        flow.controlled().unwrap();
        for stage in [
            Stage::Clustered,
            Stage::Latched,
            Stage::Timed,
            Stage::Controlled,
        ] {
            assert_eq!(flow.stage_runs(stage), 1, "{stage}");
        }
    }

    #[test]
    fn changing_protocol_reruns_only_controlled() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        flow.controlled().unwrap();
        flow.set_protocol(Protocol::NonOverlapping).unwrap();
        assert_eq!(flow.computed_through(), Some(Stage::Timed));
        flow.controlled().unwrap();
        assert_eq!(flow.stage_runs(Stage::Clustered), 1);
        assert_eq!(flow.stage_runs(Stage::Latched), 1);
        assert_eq!(flow.stage_runs(Stage::Timed), 1);
        assert_eq!(flow.stage_runs(Stage::Controlled), 2);
    }

    #[test]
    fn changing_margin_reruns_timed_and_controlled_only() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        flow.controlled().unwrap();
        flow.set_margin(0.3).unwrap();
        assert_eq!(flow.computed_through(), Some(Stage::Latched));
        flow.controlled().unwrap();
        assert_eq!(flow.stage_runs(Stage::Clustered), 1);
        assert_eq!(flow.stage_runs(Stage::Latched), 1);
        assert_eq!(flow.stage_runs(Stage::Timed), 2);
        assert_eq!(flow.stage_runs(Stage::Controlled), 2);
    }

    #[test]
    fn changing_clustering_reruns_everything() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        flow.controlled().unwrap();
        flow.set_clustering(ClusteringStrategy::PerRegister)
            .unwrap();
        assert_eq!(flow.computed_through(), None);
        flow.controlled().unwrap();
        assert_eq!(flow.stage_runs(Stage::Clustered), 2);
        assert_eq!(flow.stage_runs(Stage::Latched), 2);
        assert_eq!(flow.stage_runs(Stage::Timed), 2);
        assert_eq!(flow.stage_runs(Stage::Controlled), 2);
    }

    #[test]
    fn unchanged_options_invalidate_nothing() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        flow.controlled().unwrap();
        let same = *flow.options();
        flow.set_options(same).unwrap();
        assert_eq!(flow.computed_through(), Some(Stage::Controlled));
        // Toggling only the parallelism knob invalidates nothing either...
        flow.set_options(same.with_parallel_sizing(false)).unwrap();
        assert_eq!(flow.computed_through(), Some(Stage::Controlled));
        // ...but the assembled design must still report the current knobs
        // (regression: it used to keep the pre-change option set).
        assert!(!flow.design().unwrap().options().parallel_sizing);
        assert_eq!(flow.stage_runs(Stage::Controlled), 1);
    }

    #[test]
    fn flow_design_equals_desynchronizer_run() {
        let n = pipeline3();
        let library = lib();
        let via_wrapper = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        let via_stages = flow.design().unwrap();
        assert_eq!(via_wrapper, via_stages);
        // Also after a knob change and resume, the design matches a fresh
        // wrapper run with the final options.
        flow.set_margin(0.25).unwrap();
        let resumed = flow.design().unwrap();
        let fresh = Desynchronizer::new(&n, &library, DesyncOptions::default().with_margin(0.25))
            .run()
            .unwrap();
        assert_eq!(resumed, fresh);
    }

    #[test]
    fn parallel_and_serial_sizing_agree() {
        let n = pipeline3();
        let library = lib();
        let mut parallel = DesyncFlow::new(
            &n,
            &library,
            DesyncOptions::default().with_parallel_sizing(true),
        )
        .unwrap();
        let mut serial = DesyncFlow::new(
            &n,
            &library,
            DesyncOptions::default().with_parallel_sizing(false),
        )
        .unwrap();
        assert_eq!(parallel.timed().unwrap(), serial.timed().unwrap());
        // The assembled designs agree on every artifact (the stored options
        // necessarily differ in the parallelism knob itself).
        let p = parallel.design().unwrap();
        let s = serial.design().unwrap();
        assert_eq!(p.matched_delays(), s.matched_delays());
        assert_eq!(p.overhead_netlist(), s.overhead_netlist());
        assert_eq!(p.control_model(), s.control_model());
        assert_eq!(p.cycle_time_ps(), s.cycle_time_ps());
    }

    #[test]
    fn invalid_options_are_rejected_and_preserve_state() {
        let n = pipeline3();
        let library = lib();
        let err =
            DesyncFlow::new(&n, &library, DesyncOptions::default().with_margin(-1.0)).unwrap_err();
        assert!(matches!(err, DesyncError::InvalidOptions(_)));

        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        flow.controlled().unwrap();
        let err = flow.set_margin(-0.5).unwrap_err();
        assert!(matches!(err, DesyncError::InvalidOptions(_)));
        // The failed update left options and artifacts untouched.
        assert_eq!(flow.options().matched_delay_margin, 0.05);
        assert_eq!(flow.computed_through(), Some(Stage::Controlled));
    }

    #[test]
    fn verified_stage_reports_equivalence() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        let a = n.find_net("a").unwrap();
        flow.set_verification(VectorSource::pseudo_random(vec![a], 11), 12);
        let report = flow.verified().unwrap();
        assert!(report.is_equivalent(), "{}", report.equivalence);
        assert_eq!(flow.stage_runs(Stage::Verified), 1);
        // A new stimulus invalidates only the verification.
        flow.set_verification(VectorSource::pseudo_random(vec![a], 13), 12);
        assert_eq!(flow.computed_through(), Some(Stage::Controlled));
        flow.verified().unwrap();
        assert_eq!(flow.stage_runs(Stage::Verified), 2);
        assert_eq!(flow.stage_runs(Stage::Controlled), 1);
    }

    #[test]
    fn report_tracks_runs_and_artifacts() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        let empty = flow.report();
        assert_eq!(empty.stages.len(), 5);
        assert!(empty.stages.iter().all(|s| s.runs == 0 && !s.cached));
        assert_eq!(empty.clusters, None);

        flow.controlled().unwrap();
        let report = flow.report();
        assert_eq!(report.clusters, Some(3));
        assert_eq!(report.latches, Some(6));
        assert!(report.sync_period_ps.unwrap() > 0.0);
        assert!(report.cycle_time_ps.unwrap() > 0.0);
        assert_eq!(report.flow_equivalent, None);
        assert!(report.matched_delay_cells.unwrap() > 0);
        let text = report.to_string();
        assert!(text.contains("flow report for `pipe3`"), "{text}");
        assert!(text.contains("controlled"), "{text}");
    }

    #[test]
    fn artifacts_expose_stage_data() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        assert_eq!(flow.clustered().unwrap().len(), 3);
        assert_eq!(flow.latched().unwrap().netlist.num_latches(), 6);
        let timed = flow.timed().unwrap();
        assert_eq!(timed.matched_delays.len(), 2);
        assert!(timed
            .matched_delays
            .values()
            .all(MatchedDelay::covers_logic));
        assert_eq!(timed.edge_delay_ps().len(), 2);
        assert!(!timed.environment.input_delay_ps.is_empty());
        let network = flow.controlled().unwrap();
        assert_eq!(network.controllers.len(), 6);
        assert!(network.controller_cells() > 0);
        assert!(network.model.is_live() && network.model.is_safe());
        assert!(network.overhead.validate().is_ok());
    }

    #[test]
    fn verified_requires_stimulus_for_netlists_with_data_inputs() {
        let n = pipeline3(); // has data input `a`
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        assert_eq!(flow.verified().unwrap_err(), DesyncError::MissingStimulus);
        // Construction stages still completed; only verification refused.
        assert_eq!(flow.computed_through(), Some(Stage::Controlled));
        // A self-stimulating circuit (clock-only inputs) verifies without an
        // explicit stimulus.
        let mut counter = Netlist::new("cnt");
        let clk = counter.add_input("clk");
        let q = counter.add_net("q");
        let d = counter.add_net("d");
        counter.add_gate("inv", CellKind::Not, &[q], d).unwrap();
        counter.add_dff("r", d, clk, q).unwrap();
        counter.mark_output(q);
        let mut flow = DesyncFlow::new(&counter, &library, DesyncOptions::default()).unwrap();
        assert!(flow.verified().unwrap().is_equivalent());
    }

    #[test]
    fn environment_toggle_reruns_only_controlled() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        flow.controlled().unwrap();
        assert!(flow.controlled().unwrap().model.has_environment());
        flow.set_environment(false).unwrap();
        assert_eq!(flow.computed_through(), Some(Stage::Timed));
        assert!(!flow.controlled().unwrap().model.has_environment());
        assert_eq!(flow.stage_runs(Stage::Timed), 1);
        assert_eq!(flow.stage_runs(Stage::Controlled), 2);
    }

    #[test]
    fn designed_borrows_the_cached_assembly() {
        let n = pipeline3();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        let cycle = flow.designed().unwrap().cycle_time_ps();
        // design() hands out a clone of the same cached assembly.
        let owned = flow.design().unwrap();
        assert_eq!(owned.cycle_time_ps(), cycle);
        // Invalidation drops the cached assembly along with Controlled.
        flow.set_protocol(Protocol::NonOverlapping).unwrap();
        let after = flow.designed().unwrap().options().protocol;
        assert_eq!(after, Protocol::NonOverlapping);
    }

    #[test]
    fn engine_serves_second_flow_without_recomputing() {
        let n = pipeline3();
        let library = lib();
        let engine = crate::engine::DesyncEngine::with_workers(2);

        let mut first = engine.flow(&n, &library, DesyncOptions::default()).unwrap();
        let design_first = first.design().unwrap();
        for stage in [
            Stage::Clustered,
            Stage::Latched,
            Stage::Timed,
            Stage::Controlled,
        ] {
            assert_eq!(first.stage_runs(stage), 1, "{stage}");
            assert_eq!(first.cache_hits(stage), 0, "{stage}");
        }

        // The second flow over the identical request recomputes zero stages.
        let mut second = engine.flow(&n, &library, DesyncOptions::default()).unwrap();
        let design_second = second.design().unwrap();
        assert_eq!(design_first, design_second);
        for stage in [
            Stage::Clustered,
            Stage::Latched,
            Stage::Timed,
            Stage::Controlled,
        ] {
            assert_eq!(second.stage_runs(stage), 0, "{stage}");
            assert_eq!(second.cache_hits(stage), 1, "{stage}");
        }
        let report = engine.report();
        assert_eq!(report.netlists, 1);
        assert_eq!(report.libraries, 1);
        assert_eq!(report.total_hits(), 4);
        assert_eq!(report.total_misses(), 4);
        assert!(report.stages.iter().all(|s| s.entries == 1));
        let text = report.to_string();
        assert!(text.contains("desync engine"), "{text}");
        assert!(text.contains("hit rate"), "{text}");
    }

    #[test]
    fn engine_cache_keys_follow_option_prefixes() {
        let n = pipeline3();
        let library = lib();
        let engine = crate::engine::DesyncEngine::with_workers(1);
        engine
            .flow(&n, &library, DesyncOptions::default())
            .unwrap()
            .design()
            .unwrap();

        // A different protocol shares everything up to Timed but must
        // re-synthesize controllers.
        let mut other = engine
            .flow(
                &n,
                &library,
                DesyncOptions::default().with_protocol(Protocol::NonOverlapping),
            )
            .unwrap();
        other.design().unwrap();
        assert_eq!(other.cache_hits(Stage::Clustered), 1);
        assert_eq!(other.cache_hits(Stage::Latched), 1);
        assert_eq!(other.cache_hits(Stage::Timed), 1);
        assert_eq!(other.cache_hits(Stage::Controlled), 0);
        assert_eq!(other.stage_runs(Stage::Controlled), 1);

        // The parallelism knob is not part of any cache key.
        let mut serial_knob = engine
            .flow(
                &n,
                &library,
                DesyncOptions::default().with_parallel_sizing(false),
            )
            .unwrap();
        serial_knob.controlled().unwrap();
        assert_eq!(serial_knob.cache_hits(Stage::Controlled), 1);

        // A structurally different netlist misses everywhere.
        let mut m = pipeline3();
        m.set_name("other");
        let mut fresh = engine.flow(&m, &library, DesyncOptions::default()).unwrap();
        fresh.controlled().unwrap();
        for stage in [
            Stage::Clustered,
            Stage::Latched,
            Stage::Timed,
            Stage::Controlled,
        ] {
            assert_eq!(fresh.cache_hits(stage), 0, "{stage}");
            assert_eq!(fresh.stage_runs(stage), 1, "{stage}");
        }
        assert_eq!(engine.report().netlists, 2);
    }

    #[test]
    fn engine_flow_resumes_and_republishes_after_option_change() {
        let n = pipeline3();
        let library = lib();
        let engine = crate::engine::DesyncEngine::with_workers(1);
        let mut flow = engine.flow(&n, &library, DesyncOptions::default()).unwrap();
        flow.design().unwrap();
        // The margin change invalidates Timed onward; the re-run publishes
        // artifacts under the new key...
        flow.set_margin(0.3).unwrap();
        flow.design().unwrap();
        assert_eq!(flow.stage_runs(Stage::Timed), 2);
        // ...which a later flow with the same options picks up wholesale.
        let mut later = engine
            .flow(&n, &library, DesyncOptions::default().with_margin(0.3))
            .unwrap();
        let later_design = later.design().unwrap();
        assert_eq!(later.stage_runs(Stage::Timed), 0);
        assert_eq!(later.cache_hits(Stage::Timed), 1);
        // Cached artifacts equal a from-scratch computation.
        let fresh = DesyncFlow::new(&n, &library, DesyncOptions::default().with_margin(0.3))
            .unwrap()
            .design()
            .unwrap();
        assert_eq!(later_design, fresh);
    }

    #[test]
    fn engine_pool_sizing_is_bit_identical_to_serial() {
        let n = pipeline3();
        let library = lib();
        let engine = crate::engine::DesyncEngine::with_workers(3);
        assert_eq!(engine.pool_workers(), 3);
        let mut pooled = engine
            .flow(
                &n,
                &library,
                DesyncOptions::default().with_parallel_sizing(true),
            )
            .unwrap();
        let mut serial = DesyncFlow::new(
            &n,
            &library,
            DesyncOptions::default().with_parallel_sizing(false),
        )
        .unwrap();
        assert_eq!(pooled.timed().unwrap(), serial.timed().unwrap());
    }

    #[test]
    fn engine_clear_drops_artifacts_but_keeps_identities() {
        let n = pipeline3();
        let library = lib();
        let engine = crate::engine::DesyncEngine::with_workers(1);
        engine
            .flow(&n, &library, DesyncOptions::default())
            .unwrap()
            .controlled()
            .unwrap();
        assert!(engine.report().stages.iter().all(|s| s.entries == 1));
        engine.clear();
        let report = engine.report();
        assert!(report.stages.iter().all(|s| s.entries == 0));
        assert_eq!(report.netlists, 1);
        // Post-clear flows recompute and repopulate.
        let mut flow = engine.flow(&n, &library, DesyncOptions::default()).unwrap();
        flow.controlled().unwrap();
        assert_eq!(flow.cache_hits(Stage::Controlled), 0);
        assert_eq!(flow.stage_runs(Stage::Controlled), 1);
        assert!(engine.report().stages.iter().all(|s| s.entries == 1));
    }

    #[test]
    fn multi_clock_netlist_yields_clock_diagnostic_not_missing_stimulus() {
        // The user-visible contract: a multi-clock netlist must fail
        // `verified()` with a clock diagnostic, never with a misleading
        // `MissingStimulus`. (Today the error comes from the Latched stage's
        // conversion check; the guard inside `verified()` is defense-in-depth
        // that no longer swallows the error via `single_clock().ok()`.)
        let mut n = Netlist::new("twoclk");
        let clk_a = n.add_input("clk_a");
        let clk_b = n.add_input("clk_b");
        let a = n.add_input("a");
        let q0 = n.add_net("q0");
        let q1 = n.add_output("q1");
        n.add_dff("r0", a, clk_a, q0).unwrap();
        n.add_dff("r1", q0, clk_b, q1).unwrap();
        let library = lib();
        let mut flow = DesyncFlow::new(&n, &library, DesyncOptions::default()).unwrap();
        let err = flow.verified().unwrap_err();
        assert_ne!(err, DesyncError::MissingStimulus);
        assert!(
            matches!(
                &err,
                DesyncError::Netlist(desync_netlist::NetlistError::ClockError(msg))
                    if msg.contains("2 distinct clock nets")
            ),
            "{err}"
        );
    }

    #[test]
    fn stage_ordering_and_names() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert!(Stage::Clustered < Stage::Verified);
        assert_eq!(Stage::Timed.to_string(), "timed");
    }
}
