//! The batch service front-end over [`DesyncEngine`].
//!
//! A [`DesyncService`] is what a synthesis server's request loop talks to:
//! submit a whole batch of `(netlist, library, options)` requests with
//! [`DesyncService::run_batch`] and get every design back, computed with
//!
//! * **coalesced scheduling** — identical in-flight requests are grouped
//!   onto *one* computation instead of racing each other to fill the same
//!   store key (the engine tolerates such races, but racing flows burn CPU
//!   computing the same artifact twice); duplicates receive clones of the
//!   shared result,
//! * **bounded worker concurrency** — request groups execute on at most
//!   [`DesyncService::concurrency`] threads, a bound derived from the
//!   engine's [`DesyncRuntime`](crate::DesyncRuntime) so one handle sizes both the request
//!   workers and the matched-delay sizing pool they fan into, and
//! * **a per-batch [`ServiceReport`]** — request/coalescing counts plus the
//!   engine's cache-hit, eviction and resident-weight deltas for the batch.
//!
//! The service owns its engine, so the cache (and its capacity policy, see
//! [`StoreConfig`](crate::StoreConfig)) persists across batches: a second
//! batch over the same designs is served from the store.
//!
//! ```
//! use desync_core::{DesyncService, DesyncOptions, ServiceRequest};
//! use desync_netlist::{CellKind, CellLibrary, Netlist};
//!
//! let mut n = Netlist::new("pipe");
//! let clk = n.add_input("clk");
//! let a = n.add_input("a");
//! let q0 = n.add_net("q0");
//! let w = n.add_net("w");
//! let q1 = n.add_output("q1");
//! n.add_dff("r0", a, clk, q0).unwrap();
//! n.add_gate("g0", CellKind::Not, &[q0], w).unwrap();
//! n.add_dff("r1", w, clk, q1).unwrap();
//! let library = CellLibrary::generic_90nm();
//!
//! let service = DesyncService::new();
//! // Three requests, two identical: the duplicate coalesces.
//! let requests = vec![
//!     ServiceRequest::new(&n, &library, DesyncOptions::default()),
//!     ServiceRequest::new(&n, &library, DesyncOptions::default()),
//!     ServiceRequest::new(&n, &library, DesyncOptions::default().with_margin(0.2)),
//! ];
//! let outcome = service.run_batch(&requests);
//! assert_eq!(outcome.results.len(), 3);
//! assert!(outcome.results.iter().all(|r| r.is_ok()));
//! assert_eq!(outcome.report.coalesced, 1);
//! assert_eq!(outcome.report.unique, 2);
//! ```

use crate::engine::DesyncEngine;
use crate::error::DesyncError;
use crate::flow::DesyncDesign;
use crate::options::DesyncOptions;
use desync_netlist::{CellLibrary, Netlist};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// One unit of work for [`DesyncService::run_batch`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceRequest<'a> {
    /// The synchronous netlist to desynchronize.
    pub netlist: &'a Netlist,
    /// The cell library to size against.
    pub library: &'a CellLibrary,
    /// The flow options.
    pub options: DesyncOptions,
}

impl<'a> ServiceRequest<'a> {
    /// Bundles one request.
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary, options: DesyncOptions) -> Self {
        Self {
            netlist,
            library,
            options,
        }
    }

    /// Whether two requests describe the identical computation (same
    /// netlist content, library and options) and can therefore share one
    /// result.
    fn coalesces_with(&self, other: &Self) -> bool {
        if self.options != other.options {
            return false;
        }
        let same_netlist = std::ptr::eq(self.netlist, other.netlist)
            || (self.netlist.structural_hash() == other.netlist.structural_hash()
                && self.netlist == other.netlist);
        same_netlist && (std::ptr::eq(self.library, other.library) || self.library == other.library)
    }
}

/// The batch front-end: a [`DesyncEngine`] plus a worker-concurrency bound.
///
/// See the [module documentation](self) for the scheduling model.
#[derive(Debug)]
pub struct DesyncService {
    engine: DesyncEngine,
    concurrency: usize,
}

impl Default for DesyncService {
    fn default() -> Self {
        Self::new()
    }
}

impl DesyncService {
    /// A service over a fresh unbounded engine, with request concurrency
    /// equal to the runtime's sizing-worker count.
    pub fn new() -> Self {
        Self::with_engine(DesyncEngine::new())
    }

    /// Wraps an existing engine (bring your own store capacity / runtime).
    /// The concurrency bound defaults to the engine runtime's worker count.
    pub fn with_engine(engine: DesyncEngine) -> Self {
        let concurrency = engine.runtime().workers();
        Self {
            engine,
            concurrency,
        }
    }

    /// Returns the service with a different request-concurrency bound
    /// (clamped to at least one).
    pub fn with_concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }

    /// The maximum number of request groups executing at once.
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// The engine behind the service (for reports or direct flows).
    pub fn engine(&self) -> &DesyncEngine {
        &self.engine
    }

    /// Runs a batch of requests and returns one result per request, in
    /// request order, plus the batch report.
    ///
    /// Identical requests are coalesced onto one computation; distinct
    /// requests run concurrently on at most [`DesyncService::concurrency`]
    /// workers, every flow attached to the shared engine (so recurring
    /// artifacts come from the store even across coalescing groups).
    ///
    /// Per-request errors (invalid options, unsupported netlists) land in
    /// that request's result slot; they fail the request, never the batch.
    pub fn run_batch(&self, requests: &[ServiceRequest<'_>]) -> ServiceOutcome {
        let before = self.engine.report();
        let started = Instant::now();

        // Coalesce identical in-flight requests: one group per distinct
        // computation, remembering which request slots it serves. The scan
        // is quadratic in *groups* but each comparison short-circuits on a
        // pointer check, then a structural hash, before any deep equality.
        let mut groups: Vec<(ServiceRequest<'_>, Vec<usize>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(leader, _)| leader.coalesces_with(request))
            {
                Some((_, members)) => members.push(index),
                None => groups.push((*request, vec![index])),
            }
        }

        // Execute each group once, on a bounded set of scoped workers. The
        // workers are plain threads (not sizing-pool jobs): a flow blocks on
        // `SizingPool::run` while its delay sizing fans out, and parking a
        // pool worker on the pool's own queue would deadlock it.
        let slots: Vec<OnceLock<Result<DesyncDesign, DesyncError>>> =
            (0..groups.len()).map(|_| OnceLock::new()).collect();
        let workers = self.concurrency.clamp(1, groups.len().max(1));
        let next = AtomicUsize::new(0);
        let run_group = |group: &ServiceRequest<'_>| -> Result<DesyncDesign, DesyncError> {
            self.engine
                .flow(group.netlist, group.library, group.options)?
                .design()
        };
        if workers <= 1 || groups.len() <= 1 {
            for (slot, (leader, _)) in slots.iter().zip(&groups) {
                slot.set(run_group(leader)).expect("slot set once");
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        let Some((leader, _)) = groups.get(index) else {
                            break;
                        };
                        slots[index].set(run_group(leader)).expect("slot set once");
                    });
                }
            });
        }

        // Fan the shared results back out to every coalesced request slot:
        // clones only for the coalesced duplicates, the group's own result
        // is moved.
        let mut results: Vec<Option<Result<DesyncDesign, DesyncError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (slot, (_, members)) in slots.into_iter().zip(&groups) {
            let result = slot.into_inner().expect("every group executed");
            for &index in &members[1..] {
                results[index] = Some(result.clone());
            }
            results[members[0]] = Some(result);
        }
        let results: Vec<Result<DesyncDesign, DesyncError>> = results
            .into_iter()
            .map(|slot| slot.expect("every request mapped to a group"))
            .collect();

        let wall = started.elapsed();
        let after = self.engine.report();
        let report = ServiceReport {
            requests: requests.len(),
            unique: groups.len(),
            coalesced: requests.len() - groups.len(),
            workers,
            wall,
            cache_hits: after.total_hits() - before.total_hits(),
            cache_misses: after.total_misses() - before.total_misses(),
            evictions: after.total_evictions() - before.total_evictions(),
            resident_weight: after.resident_weight,
            failures: results.iter().filter(|r| r.is_err()).count(),
        };
        ServiceOutcome { results, report }
    }
}

/// Everything [`DesyncService::run_batch`] produces.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// One result per submitted request, in request order. Coalesced
    /// requests hold clones of their group's shared result.
    pub results: Vec<Result<DesyncDesign, DesyncError>>,
    /// The batch statistics.
    pub report: ServiceReport,
}

/// Statistics of one [`DesyncService::run_batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReport {
    /// Requests submitted.
    pub requests: usize,
    /// Distinct computations after coalescing.
    pub unique: usize,
    /// Requests served by another request's computation
    /// (`requests - unique`).
    pub coalesced: usize,
    /// Worker threads the batch actually used.
    pub workers: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Engine stage-cache hits during the batch.
    pub cache_hits: usize,
    /// Engine stage-cache misses during the batch.
    pub cache_misses: usize,
    /// Artifacts evicted during the batch (stages + sync runs).
    pub evictions: usize,
    /// Resident store weight after the batch.
    pub resident_weight: usize,
    /// Requests whose result is an error.
    pub failures: usize,
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service batch: {} request(s), {} unique ({} coalesced), {} worker(s), wall {} us",
            self.requests,
            self.unique,
            self.coalesced,
            self.workers,
            self.wall.as_micros()
        )?;
        write!(
            f,
            "  store: {} hit(s) / {} miss(es), {} eviction(s), {} weight resident; {} failure(s)",
            self.cache_hits, self.cache_misses, self.evictions, self.resident_weight, self.failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellKind;

    fn pipeline3() -> Netlist {
        let mut n = Netlist::new("pipe3");
        let clk = n.add_input("clk");
        let a = n.add_input("a");
        let q0 = n.add_net("q0");
        let w0 = n.add_net("w0");
        let q1 = n.add_net("q1");
        let w1 = n.add_net("w1");
        let q2 = n.add_output("q2");
        n.add_dff("r0", a, clk, q0).unwrap();
        n.add_gate("g0", CellKind::Not, &[q0], w0).unwrap();
        n.add_dff("r1", w0, clk, q1).unwrap();
        n.add_gate("g1", CellKind::Buf, &[q1], w1).unwrap();
        n.add_dff("r2", w1, clk, q2).unwrap();
        n
    }

    #[test]
    fn batch_results_match_detached_flows_in_request_order() {
        let n = pipeline3();
        let mut other = pipeline3();
        other.set_name("other");
        let library = CellLibrary::generic_90nm();
        let service = DesyncService::with_engine(DesyncEngine::with_workers(2));
        let requests = vec![
            ServiceRequest::new(&n, &library, DesyncOptions::default()),
            ServiceRequest::new(&other, &library, DesyncOptions::default()),
            ServiceRequest::new(&n, &library, DesyncOptions::default().with_margin(0.2)),
        ];
        let outcome = service.run_batch(&requests);
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(outcome.report.coalesced, 0);
        assert_eq!(outcome.report.unique, 3);
        for (request, result) in requests.iter().zip(&outcome.results) {
            let fresh =
                crate::Desynchronizer::new(request.netlist, request.library, request.options)
                    .run()
                    .unwrap();
            assert_eq!(result.as_ref().unwrap(), &fresh);
        }
    }

    #[test]
    fn identical_requests_coalesce_onto_one_computation() {
        let n = pipeline3();
        let library = CellLibrary::generic_90nm();
        let service = DesyncService::with_engine(DesyncEngine::with_workers(2)).with_concurrency(4);
        let requests: Vec<_> = (0..6)
            .map(|_| ServiceRequest::new(&n, &library, DesyncOptions::default()))
            .collect();
        let outcome = service.run_batch(&requests);
        assert_eq!(outcome.report.requests, 6);
        assert_eq!(outcome.report.unique, 1);
        assert_eq!(outcome.report.coalesced, 5);
        assert_eq!(outcome.report.failures, 0);
        // One computation: the engine saw exactly one miss per construction
        // stage and zero hits (nobody raced the same key).
        assert_eq!(outcome.report.cache_misses, 4);
        assert_eq!(outcome.report.cache_hits, 0);
        let first = outcome.results[0].as_ref().unwrap();
        for result in &outcome.results[1..] {
            assert_eq!(result.as_ref().unwrap(), first);
        }
        // A second batch over the same request is served from the store.
        let outcome = service.run_batch(&requests[..2]);
        assert_eq!(outcome.report.cache_hits, 4);
        assert_eq!(outcome.report.cache_misses, 0);
        let text = outcome.report.to_string();
        assert!(text.contains("coalesced"), "{text}");
        assert!(text.contains("eviction"), "{text}");
    }

    #[test]
    fn per_request_errors_fail_only_their_slot() {
        let n = pipeline3();
        let mut comb = Netlist::new("comb");
        let a = comb.add_input("a");
        let y = comb.add_output("y");
        comb.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let library = CellLibrary::generic_90nm();
        let service = DesyncService::with_engine(DesyncEngine::with_workers(1));
        let requests = vec![
            ServiceRequest::new(&n, &library, DesyncOptions::default()),
            ServiceRequest::new(&comb, &library, DesyncOptions::default()),
            ServiceRequest::new(&n, &library, DesyncOptions::default().with_margin(-1.0)),
        ];
        let outcome = service.run_batch(&requests);
        assert!(outcome.results[0].is_ok());
        assert_eq!(outcome.results[1], Err(DesyncError::NoRegisters));
        assert!(matches!(
            outcome.results[2],
            Err(DesyncError::InvalidOptions(_))
        ));
        assert_eq!(outcome.report.failures, 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let service = DesyncService::with_engine(DesyncEngine::with_workers(1));
        let outcome = service.run_batch(&[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.report.requests, 0);
        assert_eq!(outcome.report.unique, 0);
        assert_eq!(outcome.report.coalesced, 0);
    }
}
