//! The batch service front-end over [`DesyncEngine`].
//!
//! A [`DesyncService`] is what a synthesis server's request loop talks to.
//! It accepts two kinds of work:
//!
//! * **Design batches** ([`DesyncService::run_batch`]): a slice of
//!   `(netlist, library, options)` [`ServiceRequest`]s, each producing a
//!   [`DesyncDesign`].
//! * **Verification sweeps** ([`DesyncService::run_sweep`]): a slice of
//!   [`SweepRequest`]s — `(netlist, library, options, stimulus, cycles)`
//!   points, the protocol × margin × stimulus grid of a co-simulation
//!   sweep — each producing an
//!   [`EquivalenceReport`](crate::EquivalenceReport). Sweep points are
//!   first-class service work: they are scheduled across the worker pool
//!   like design requests, results are merged back **in request order**
//!   (deterministic regardless of scheduling), and a [`SweepReport`]
//!   accounts points, compiled-model reuses, sizing rebinds, sync-run
//!   cache traffic and per-worker simulated events.
//! * **Randomized-stimulus equivalence campaigns**
//!   ([`DesyncService::run_campaign`]): sweep points verified against up
//!   to 64 independent stimulus lanes each, executed by the bit-parallel
//!   packed simulation kernel at roughly the cost of one scalar
//!   verification per point. Each point produces a
//!   [`MultiSeedReport`](crate::MultiSeedReport) whose per-lane verdicts
//!   are bit-identical to 64 scalar [`DesyncService::run_sweep`] points,
//!   merged back in request order like any sweep.
//!
//! Both entry points share the execution machinery:
//!
//! * **static admission control** — before any stage computes, each request
//!   group runs the `desync-lint` pre-flight
//!   ([`DesyncFlow::lint`](crate::DesyncFlow::lint), cached per netlist in
//!   the engine's store). A design with error-severity diagnostics is
//!   rejected with [`DesyncError::LintRejected`] carrying the full
//!   witness-bearing report — the request fails in O(V+E) with zero stage
//!   computations, and [`ServiceReport::lint_rejections`] /
//!   [`ServiceReport::lint_cache_hits`] account for the traffic,
//! * **coalesced scheduling** — identical in-flight requests are grouped
//!   onto *one* computation; duplicates receive clones of the shared
//!   result. Below the request level, the engine's
//!   [`ArtifactStore`](crate::store::ArtifactStore) additionally coalesces
//!   racing computations of one *artifact*: when two distinct sweep points
//!   both need a design's shared stage (or its sync reference run, or its
//!   compiled datapath model), exactly one computes it and the other
//!   blocks briefly and is served — artifacts are computed exactly once
//!   per batch, never redundantly,
//! * **bounded worker concurrency** — request groups execute on at most
//!   [`DesyncService::concurrency`] threads, a bound derived from the
//!   engine's [`DesyncRuntime`](crate::DesyncRuntime) so one handle sizes both the request
//!   workers and the matched-delay sizing pool they fan into, and
//! * **per-batch reports** — [`ServiceReport`] / [`SweepReport`] with the
//!   engine's cache-hit, eviction and resident-weight deltas.
//!
//! The service owns its engine, so the cache (and its capacity policy, see
//! [`StoreConfig`](crate::StoreConfig)) persists across batches: a second
//! batch over the same designs is served from the store, and a sweep after
//! a design batch reuses the construction stages the batch already built.
//!
//! # The asynchronous core underneath
//!
//! Both entry points are thin synchronous wrappers over the async
//! submission front-end, [`ServiceQueue`](crate::ServiceQueue) (module
//! [`submit`](crate::submit)). A caller that wants the full lifecycle —
//! non-blocking submission with per-request [`TicketHandle`](crate::TicketHandle)s
//! (`poll` / `try_wait` / `wait`), cooperative cancellation through
//! [`CancelToken`](crate::CancelToken)s checked at every
//! [`DesyncFlow`](crate::DesyncFlow) stage boundary, per-request deadlines,
//! and backpressure via a bounded queue with a configurable
//! [`AdmissionPolicy`](crate::AdmissionPolicy) — creates a queue directly
//! with [`DesyncService::queue_with`] and keeps it alive across requests.
//!
//! The wrappers stage a batch deterministically: the queue is **paused**,
//! every coalesced group is submitted, then the queue resumes — so the
//! whole batch is formed before any worker picks up work, exactly like the
//! historical all-at-once batch execution, and the queue's high-water mark
//! is pinned at the group count regardless of worker timing. Results are
//! bit-identical to the historical synchronous implementation; the reports
//! additionally carry the queue's traffic counters (high water, sheds,
//! contained panics, cancellations, deadline misses — all zero for a
//! healthy fault-free batch).
//!
//! # Multi-tenant scheduling
//!
//! Every request can carry a [`SubmitMeta`](crate::SubmitMeta) — a
//! [`TenantId`](crate::TenantId) plus a [`Priority`](crate::Priority) lane
//! — via `with_meta` on [`ServiceRequest`] / [`SweepRequest`] /
//! [`CampaignRequest`]. The queue underneath dispatches tag → lane →
//! tenant-DRR → worker: strict priority lanes first, deficit-round-robin
//! across tenants within a lane, and a logical-clock aging bound that
//! promotes any request waiting too long (see [`submit`](crate::submit)
//! for the full lifecycle, aging bound and quota semantics). Requests with
//! different tags never coalesce — each tenant's traffic is dispatched
//! and accounted under its own tag, while the engine's store still
//! computes shared artifacts exactly once. The reports carry the
//! per-tenant and per-lane counter blocks ([`ServiceReport::tenants`],
//! [`ServiceReport::lanes`]); untagged batches see one default-tenant
//! entry and behave exactly as before.
//!
//! Robustness guarantees (proven deterministically by the fault-injection
//! suite under the `failpoints` feature, see [`failpoints`](crate::failpoints)
//! for the failpoint catalog):
//!
//! * a worker panic is contained to *its* request — the ticket resolves
//!   [`DesyncError::StagePanicked`] naming the stage, the batch and the
//!   workers survive, and the store's in-flight leader/follower registry
//!   is never wedged (followers of a failed leader retry or surface the
//!   error),
//! * a cancelled request stops at the next stage boundary with
//!   [`DesyncError::Cancelled`]; an expired one with
//!   [`DesyncError::DeadlineExceeded`],
//! * a full bounded queue sheds with [`DesyncError::QueueFull`] (or blocks
//!   the submitter, by policy) instead of growing without bound.
//!
//! ```
//! use desync_core::{DesyncService, DesyncOptions, ServiceRequest};
//! use desync_netlist::{CellKind, CellLibrary, Netlist};
//!
//! let mut n = Netlist::new("pipe");
//! let clk = n.add_input("clk");
//! let a = n.add_input("a");
//! let q0 = n.add_net("q0");
//! let w = n.add_net("w");
//! let q1 = n.add_output("q1");
//! n.add_dff("r0", a, clk, q0).unwrap();
//! n.add_gate("g0", CellKind::Not, &[q0], w).unwrap();
//! n.add_dff("r1", w, clk, q1).unwrap();
//! let library = CellLibrary::generic_90nm();
//!
//! let service = DesyncService::new();
//! // Three requests, two identical: the duplicate coalesces.
//! let requests = vec![
//!     ServiceRequest::new(&n, &library, DesyncOptions::default()),
//!     ServiceRequest::new(&n, &library, DesyncOptions::default()),
//!     ServiceRequest::new(&n, &library, DesyncOptions::default().with_margin(0.2)),
//! ];
//! let outcome = service.run_batch(&requests);
//! assert_eq!(outcome.results.len(), 3);
//! assert!(outcome.results.iter().all(|r| r.is_ok()));
//! assert_eq!(outcome.report.coalesced, 1);
//! assert_eq!(outcome.report.unique, 2);
//! ```

use crate::engine::DesyncEngine;
use crate::error::DesyncError;
use crate::flow::DesyncDesign;
use crate::options::DesyncOptions;
use crate::submit::{
    CampaignPointOutcome, LaneCounters, QueueCampaignRequest, QueueConfig, QueueCounters,
    QueueRequest, QueueSweepRequest, ServiceQueue, SubmitMeta, SubmitOptions, TenantCounters,
    TicketHandle,
};
use crate::verify::{EquivalenceReport, MultiSeedReport};
use desync_netlist::{CellLibrary, Netlist};
use desync_sim::{PackedVectorSource, VectorSource};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether two `(netlist, library)` pairs denote the identical computation
/// inputs. Short-circuits on pointer identity, then a structural hash,
/// before any deep equality.
fn same_inputs(
    a_netlist: &Netlist,
    a_library: &CellLibrary,
    b_netlist: &Netlist,
    b_library: &CellLibrary,
) -> bool {
    let same_netlist = std::ptr::eq(a_netlist, b_netlist)
        || (a_netlist.structural_hash() == b_netlist.structural_hash() && a_netlist == b_netlist);
    same_netlist && (std::ptr::eq(a_library, b_library) || a_library == b_library)
}

/// One unit of work for [`DesyncService::run_batch`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceRequest<'a> {
    /// The synchronous netlist to desynchronize.
    pub netlist: &'a Netlist,
    /// The cell library to size against.
    pub library: &'a CellLibrary,
    /// The flow options.
    pub options: DesyncOptions,
    /// The scheduling tag (tenant + priority) the request submits under.
    pub meta: SubmitMeta,
}

impl<'a> ServiceRequest<'a> {
    /// Bundles one request (default scheduling tag).
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary, options: DesyncOptions) -> Self {
        Self {
            netlist,
            library,
            options,
            meta: SubmitMeta::default(),
        }
    }

    /// Returns the request with a scheduling tag.
    pub fn with_meta(mut self, meta: SubmitMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Whether two requests describe the identical computation (same
    /// netlist content, library and options) and can therefore share one
    /// result. Requests with different scheduling tags never coalesce —
    /// each tenant's traffic is dispatched and accounted under its own
    /// tag, even for identical inputs (the store still computes the
    /// artifacts only once).
    fn coalesces_with(&self, other: &Self) -> bool {
        self.meta == other.meta
            && self.options == other.options
            && same_inputs(self.netlist, self.library, other.netlist, other.library)
    }
}

/// One verification sweep point for [`DesyncService::run_sweep`]: a design
/// request plus the co-simulation inputs (stimulus and capture count) its
/// flow-equivalence check runs under.
#[derive(Debug, Clone, Copy)]
pub struct SweepRequest<'a> {
    /// The synchronous netlist to desynchronize and verify against.
    pub netlist: &'a Netlist,
    /// The cell library to size and simulate against.
    pub library: &'a CellLibrary,
    /// The flow options of this point (protocol, margin, …).
    pub options: DesyncOptions,
    /// The input stimulus of the co-simulation.
    pub stimulus: &'a VectorSource,
    /// Number of captures compared per register.
    pub cycles: usize,
    /// The scheduling tag (tenant + priority) the point submits under.
    pub meta: SubmitMeta,
}

impl<'a> SweepRequest<'a> {
    /// Bundles one sweep point (default scheduling tag).
    pub fn new(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        options: DesyncOptions,
        stimulus: &'a VectorSource,
        cycles: usize,
    ) -> Self {
        Self {
            netlist,
            library,
            options,
            stimulus,
            cycles,
            meta: SubmitMeta::default(),
        }
    }

    /// Returns the point with a scheduling tag.
    pub fn with_meta(mut self, meta: SubmitMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Whether two sweep points describe the identical verification (same
    /// design computation and the same co-simulation inputs). The stimulus
    /// short-circuits on pointer identity, then the content digest, and —
    /// like the netlist's structural-hash check beside it — confirms a
    /// digest match with full equality so a 64-bit collision can never
    /// hand one point another point's report. Points with different
    /// scheduling tags never coalesce (see
    /// [`ServiceRequest`]'s coalescing notes).
    fn coalesces_with(&self, other: &Self) -> bool {
        self.meta == other.meta
            && self.options == other.options
            && self.cycles == other.cycles
            && (std::ptr::eq(self.stimulus, other.stimulus)
                || (self.stimulus.content_digest() == other.stimulus.content_digest()
                    && self.stimulus == other.stimulus))
            && same_inputs(self.netlist, self.library, other.netlist, other.library)
    }
}

/// One randomized-stimulus equivalence campaign point for
/// [`DesyncService::run_campaign`]: a design request plus the packed
/// multi-lane stimulus its flow-equivalence check runs under.
#[derive(Debug, Clone, Copy)]
pub struct CampaignRequest<'a> {
    /// The synchronous netlist to desynchronize and verify against.
    pub netlist: &'a Netlist,
    /// The cell library to size and simulate against.
    pub library: &'a CellLibrary,
    /// The flow options of this point (protocol, margin, …).
    pub options: DesyncOptions,
    /// The interleaved multi-lane stimulus (up to 64 seeds per point).
    pub stimulus: &'a PackedVectorSource,
    /// Number of captures compared per register, per lane.
    pub cycles: usize,
    /// The scheduling tag (tenant + priority) the point submits under.
    pub meta: SubmitMeta,
}

impl<'a> CampaignRequest<'a> {
    /// Bundles one campaign point (default scheduling tag).
    pub fn new(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        options: DesyncOptions,
        stimulus: &'a PackedVectorSource,
        cycles: usize,
    ) -> Self {
        Self {
            netlist,
            library,
            options,
            stimulus,
            cycles,
            meta: SubmitMeta::default(),
        }
    }

    /// Returns the point with a scheduling tag.
    pub fn with_meta(mut self, meta: SubmitMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Whether two campaign points describe the identical verification —
    /// the same discipline as [`SweepRequest::coalesces_with`], with the
    /// packed stimulus digest (which covers lane count, lane order and
    /// per-lane content) in place of the scalar one.
    fn coalesces_with(&self, other: &Self) -> bool {
        self.meta == other.meta
            && self.options == other.options
            && self.cycles == other.cycles
            && (std::ptr::eq(self.stimulus, other.stimulus)
                || (self.stimulus.content_digest() == other.stimulus.content_digest()
                    && self.stimulus == other.stimulus))
            && same_inputs(self.netlist, self.library, other.netlist, other.library)
    }
}

/// The batch front-end: a [`DesyncEngine`] plus a worker-concurrency bound.
///
/// See the [module documentation](self) for the scheduling model.
#[derive(Debug)]
pub struct DesyncService {
    engine: Arc<DesyncEngine>,
    concurrency: usize,
}

impl Default for DesyncService {
    fn default() -> Self {
        Self::new()
    }
}

impl DesyncService {
    /// A service over a fresh unbounded engine, with request concurrency
    /// equal to the runtime's sizing-worker count.
    pub fn new() -> Self {
        Self::with_engine(DesyncEngine::new())
    }

    /// Wraps an existing engine (bring your own store capacity / runtime).
    /// The concurrency bound defaults to the engine runtime's worker count.
    pub fn with_engine(engine: DesyncEngine) -> Self {
        Self::with_shared_engine(Arc::new(engine))
    }

    /// Wraps an engine that is already shared (e.g. with long-lived
    /// [`ServiceQueue`]s). The concurrency bound defaults to the engine
    /// runtime's worker count.
    pub fn with_shared_engine(engine: Arc<DesyncEngine>) -> Self {
        let concurrency = engine.runtime().workers();
        Self {
            engine,
            concurrency,
        }
    }

    /// Returns the service with a different request-concurrency bound
    /// (clamped to at least one).
    pub fn with_concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = concurrency.max(1);
        self
    }

    /// The maximum number of request groups executing at once.
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// The engine behind the service (for reports or direct flows).
    pub fn engine(&self) -> &DesyncEngine {
        &self.engine
    }

    /// The shared handle to the engine (for building long-lived
    /// [`ServiceQueue`]s or other co-owners of the store).
    pub fn shared_engine(&self) -> Arc<DesyncEngine> {
        Arc::clone(&self.engine)
    }

    /// Spawns a standalone async submission queue over this service's
    /// engine: unbounded depth, reject-new admission, and as many workers
    /// as the service's concurrency bound. The queue shares the engine's
    /// store, so its requests reuse (and feed) the same artifact cache as
    /// the synchronous wrappers.
    pub fn queue(&self) -> ServiceQueue {
        self.queue_with(QueueConfig::with_workers(self.concurrency))
    }

    /// Spawns a standalone async submission queue with an explicit
    /// [`QueueConfig`] (depth bound, admission policy, worker count).
    pub fn queue_with(&self, config: QueueConfig) -> ServiceQueue {
        ServiceQueue::new(Arc::clone(&self.engine), config)
    }

    /// Runs a batch of requests and returns one result per request, in
    /// request order, plus the batch report.
    ///
    /// Identical requests are coalesced onto one computation; distinct
    /// requests run concurrently on at most [`DesyncService::concurrency`]
    /// workers, every flow attached to the shared engine (so recurring
    /// artifacts come from the store even across coalescing groups).
    ///
    /// Per-request errors (invalid options, unsupported netlists) land in
    /// that request's result slot; they fail the request, never the batch.
    pub fn run_batch(&self, requests: &[ServiceRequest<'_>]) -> ServiceOutcome {
        let before = self.engine.report();
        let started = Instant::now();

        // Coalesce identical in-flight requests: one group per distinct
        // computation, remembering which request slots it serves. The scan
        // is quadratic in *groups* but each comparison short-circuits on a
        // pointer check, then a structural hash, before any deep equality.
        let mut groups: Vec<(ServiceRequest<'_>, Vec<usize>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(leader, _)| leader.coalesces_with(request))
            {
                Some((_, members)) => members.push(index),
                None => groups.push((*request, vec![index])),
            }
        }

        // Execute each group once through the async submission core. The
        // queue is paused while the batch stages its groups and resumed
        // only when all of them are enqueued: the whole batch is formed
        // before the first worker picks anything up — reproducing the
        // historical all-at-once batch semantics and pinning the queue's
        // high-water mark at the group count, independent of scheduling.
        let workers = self.concurrency.clamp(1, groups.len().max(1));
        let mut queue_counters = QueueCounters::default();
        let group_results: Vec<Result<DesyncDesign, DesyncError>> = if groups.is_empty() {
            Vec::new()
        } else {
            let queue = self.queue_with(QueueConfig::with_workers(workers));
            queue.pause();
            let handles: Vec<_> = groups
                .iter()
                .map(|(leader, _)| {
                    let request = QueueRequest::new(
                        self.engine.intern_netlist(leader.netlist),
                        self.engine.intern_library(leader.library),
                        leader.options,
                    );
                    queue.submit(request, SubmitOptions::default().with_meta(leader.meta))
                })
                .collect();
            queue.resume();
            let results = handles.into_iter().map(TicketHandle::wait).collect();
            queue_counters = queue.counters();
            results
        };

        // Fan the shared results back out to every coalesced request slot:
        // clones only for the coalesced duplicates, the group's own result
        // is moved.
        let mut results: Vec<Option<Result<DesyncDesign, DesyncError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (result, (_, members)) in group_results.into_iter().zip(&groups) {
            for &index in &members[1..] {
                results[index] = Some(result.clone());
            }
            results[members[0]] = Some(result);
        }
        let results: Vec<Result<DesyncDesign, DesyncError>> = results
            .into_iter()
            .map(|slot| slot.expect("every request mapped to a group"))
            .collect();

        let wall = started.elapsed();
        let after = self.engine.report();
        let report = ServiceReport {
            requests: requests.len(),
            unique: groups.len(),
            coalesced: requests.len() - groups.len(),
            workers,
            wall,
            cache_hits: after.total_hits() - before.total_hits(),
            cache_misses: after.total_misses() - before.total_misses(),
            evictions: after.total_evictions() - before.total_evictions(),
            resident_weight: after.resident_weight,
            lint_rejections: results
                .iter()
                .filter(|r| matches!(r, Err(DesyncError::LintRejected(_))))
                .count(),
            lint_cache_hits: after.lint_hits - before.lint_hits,
            failures: results.iter().filter(|r| r.is_err()).count(),
            queue_high_water: queue_counters.high_water,
            shed: queue_counters.shed,
            panics_contained: queue_counters.panics_contained,
            cancelled: queue_counters.cancelled,
            deadline_exceeded: queue_counters.deadline_exceeded,
            tenants: queue_counters.tenants,
            lanes: queue_counters.lanes,
        };
        ServiceOutcome { results, report }
    }

    /// Runs a batch of verification sweep points and returns one
    /// [`EquivalenceReport`] result per point, **in request order**, plus
    /// the sweep statistics.
    ///
    /// Scheduling is identical to [`DesyncService::run_batch`]: identical
    /// points coalesce onto one verification, distinct points run
    /// concurrently on at most [`DesyncService::concurrency`] workers, and
    /// every flow attaches to the shared engine. The engine's store
    /// guarantees each underlying artifact — shared construction stages,
    /// the per-design sync reference run, the per-design compiled datapath
    /// model, the margin-independent sizing analysis — is computed
    /// *exactly once* across the whole sweep (racing points coalesce at
    /// the store), so the merged reports are bit-identical to running the
    /// points serially in any order.
    ///
    /// Per-point errors (invalid options, missing stimulus, unsupported
    /// netlists) land in that point's result slot; they fail the point,
    /// never the sweep.
    pub fn run_sweep(&self, requests: &[SweepRequest<'_>]) -> SweepOutcome {
        let before = self.engine.report();
        let started = Instant::now();

        // Coalesce identical in-flight points, exactly like run_batch.
        let mut groups: Vec<(SweepRequest<'_>, Vec<usize>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(leader, _)| leader.coalesces_with(request))
            {
                Some((_, members)) => members.push(index),
                None => groups.push((*request, vec![index])),
            }
        }

        // One verification per group, through the async submission core
        // (pause → stage all groups → resume, exactly like run_batch). The
        // queue's workers additionally accumulate the events their
        // simulations actually committed (sync references served from the
        // cache count zero — nothing was simulated).
        let workers = self.concurrency.clamp(1, groups.len().max(1));
        let mut queue_counters = QueueCounters::default();
        let mut per_worker_events = vec![0usize; workers];
        let group_results: Vec<Result<EquivalenceReport, DesyncError>> = if groups.is_empty() {
            Vec::new()
        } else {
            let queue = self.queue_with(QueueConfig::with_workers(workers));
            queue.pause();
            let handles: Vec<_> = groups
                .iter()
                .map(|(leader, _)| {
                    let request = QueueSweepRequest::new(
                        self.engine.intern_netlist(leader.netlist),
                        self.engine.intern_library(leader.library),
                        leader.options,
                        leader.stimulus.clone(),
                        leader.cycles,
                    );
                    queue.submit_sweep(request, SubmitOptions::default().with_meta(leader.meta))
                })
                .collect();
            queue.resume();
            let results = handles.into_iter().map(TicketHandle::wait).collect();
            queue_counters = queue.counters();
            per_worker_events = queue.worker_events();
            results
        };

        // Deterministic merge: fan the shared results back out to every
        // coalesced point slot, in request order.
        let mut results: Vec<Option<Result<EquivalenceReport, DesyncError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (result, (_, members)) in group_results.into_iter().zip(&groups) {
            for &index in &members[1..] {
                results[index] = Some(result.clone());
            }
            results[members[0]] = Some(result);
        }
        let results: Vec<Result<EquivalenceReport, DesyncError>> = results
            .into_iter()
            .map(|slot| slot.expect("every point mapped to a group"))
            .collect();

        let wall = started.elapsed();
        let after = self.engine.report();
        let report = SweepReport {
            points: requests.len(),
            unique: groups.len(),
            coalesced: requests.len() - groups.len(),
            workers,
            wall,
            compile_reuses: after.compiled_model_hits - before.compiled_model_hits,
            rebinds: after.sizing_hits - before.sizing_hits,
            sync_run_hits: after.sync_run_hits - before.sync_run_hits,
            sync_run_misses: after.sync_run_misses - before.sync_run_misses,
            cache_hits: after.total_hits() - before.total_hits(),
            cache_misses: after.total_misses() - before.total_misses(),
            store_coalesced: after.store_coalesced - before.store_coalesced,
            per_worker_events,
            lint_rejections: results
                .iter()
                .filter(|r| matches!(r, Err(DesyncError::LintRejected(_))))
                .count(),
            lint_cache_hits: after.lint_hits - before.lint_hits,
            failures: results.iter().filter(|r| r.is_err()).count(),
            queue_high_water: queue_counters.high_water,
            shed: queue_counters.shed,
            panics_contained: queue_counters.panics_contained,
            cancelled: queue_counters.cancelled,
            deadline_exceeded: queue_counters.deadline_exceeded,
            tenants: queue_counters.tenants,
            lanes: queue_counters.lanes,
        };
        SweepOutcome { results, report }
    }

    /// Runs a batch of randomized-stimulus equivalence campaign points and
    /// returns one [`MultiSeedReport`] result per point, **in request
    /// order**, plus the sweep statistics and the total scalar-equivalent
    /// lane events.
    ///
    /// Each point is verified by a single bit-parallel co-simulation
    /// carrying all its stimulus lanes, so a 64-seed campaign point costs
    /// roughly one scalar [`DesyncService::run_sweep`] point. Scheduling,
    /// coalescing and the deterministic request-order merge are identical
    /// to `run_sweep`; the [`SweepReport`]'s `per_worker_events` count
    /// word-level committed events (one per packed net change), while
    /// [`CampaignOutcome::lane_events_simulated`] counts the
    /// scalar-equivalent work those words carried.
    pub fn run_campaign(&self, requests: &[CampaignRequest<'_>]) -> CampaignOutcome {
        let before = self.engine.report();
        let started = Instant::now();

        // Coalesce identical in-flight points, exactly like run_sweep.
        let mut groups: Vec<(CampaignRequest<'_>, Vec<usize>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            match groups
                .iter_mut()
                .find(|(leader, _)| leader.coalesces_with(request))
            {
                Some((_, members)) => members.push(index),
                None => groups.push((*request, vec![index])),
            }
        }

        let workers = self.concurrency.clamp(1, groups.len().max(1));
        let mut queue_counters = QueueCounters::default();
        let mut per_worker_events = vec![0usize; workers];
        let group_results: Vec<Result<CampaignPointOutcome, DesyncError>> = if groups.is_empty() {
            Vec::new()
        } else {
            let queue = self.queue_with(QueueConfig::with_workers(workers));
            queue.pause();
            let handles: Vec<_> = groups
                .iter()
                .map(|(leader, _)| {
                    let request = QueueCampaignRequest::new(
                        self.engine.intern_netlist(leader.netlist),
                        self.engine.intern_library(leader.library),
                        leader.options,
                        leader.stimulus.clone(),
                        leader.cycles,
                    );
                    queue.submit_campaign(request, SubmitOptions::default().with_meta(leader.meta))
                })
                .collect();
            queue.resume();
            let results = handles.into_iter().map(TicketHandle::wait).collect();
            queue_counters = queue.counters();
            per_worker_events = queue.worker_events();
            results
        };

        // Lane events are summed over the executed groups only — coalesced
        // duplicates share a computation and must not double-count it.
        let lane_events_simulated = group_results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|outcome| outcome.lane_events)
            .sum();

        // Deterministic merge, in request order (reports only; the lane
        // event totals are batch-level).
        let mut results: Vec<Option<Result<MultiSeedReport, DesyncError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (result, (_, members)) in group_results.into_iter().zip(&groups) {
            let result = result.map(|outcome| outcome.report);
            for &index in &members[1..] {
                results[index] = Some(result.clone());
            }
            results[members[0]] = Some(result);
        }
        let results: Vec<Result<MultiSeedReport, DesyncError>> = results
            .into_iter()
            .map(|slot| slot.expect("every point mapped to a group"))
            .collect();

        let wall = started.elapsed();
        let after = self.engine.report();
        let report = SweepReport {
            points: requests.len(),
            unique: groups.len(),
            coalesced: requests.len() - groups.len(),
            workers,
            wall,
            compile_reuses: after.compiled_model_hits - before.compiled_model_hits,
            rebinds: after.sizing_hits - before.sizing_hits,
            sync_run_hits: after.sync_run_hits - before.sync_run_hits,
            sync_run_misses: after.sync_run_misses - before.sync_run_misses,
            cache_hits: after.total_hits() - before.total_hits(),
            cache_misses: after.total_misses() - before.total_misses(),
            store_coalesced: after.store_coalesced - before.store_coalesced,
            per_worker_events,
            lint_rejections: results
                .iter()
                .filter(|r| matches!(r, Err(DesyncError::LintRejected(_))))
                .count(),
            lint_cache_hits: after.lint_hits - before.lint_hits,
            failures: results.iter().filter(|r| r.is_err()).count(),
            queue_high_water: queue_counters.high_water,
            shed: queue_counters.shed,
            panics_contained: queue_counters.panics_contained,
            cancelled: queue_counters.cancelled,
            deadline_exceeded: queue_counters.deadline_exceeded,
            tenants: queue_counters.tenants,
            lanes: queue_counters.lanes,
        };
        CampaignOutcome {
            results,
            report,
            lane_events_simulated,
        }
    }
}

/// Everything [`DesyncService::run_batch`] produces.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// One result per submitted request, in request order. Coalesced
    /// requests hold clones of their group's shared result.
    pub results: Vec<Result<DesyncDesign, DesyncError>>,
    /// The batch statistics.
    pub report: ServiceReport,
}

/// Statistics of one [`DesyncService::run_batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceReport {
    /// Requests submitted.
    pub requests: usize,
    /// Distinct computations after coalescing.
    pub unique: usize,
    /// Requests served by another request's computation
    /// (`requests - unique`).
    pub coalesced: usize,
    /// Worker threads the batch actually used.
    pub workers: usize,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Engine stage-cache hits during the batch.
    pub cache_hits: usize,
    /// Engine stage-cache misses during the batch.
    pub cache_misses: usize,
    /// Artifacts evicted during the batch (stages + sync runs).
    pub evictions: usize,
    /// Resident store weight after the batch.
    pub resident_weight: usize,
    /// Requests rejected at admission by the static pre-flight lint
    /// (their result slot holds [`DesyncError::LintRejected`] with the
    /// witness-bearing report; counted inside `failures` too).
    pub lint_rejections: usize,
    /// Lint pre-flight reports served from the engine's store instead of
    /// re-analyzed (repeat submissions of an already-linted netlist).
    pub lint_cache_hits: usize,
    /// Requests whose result is an error.
    pub failures: usize,
    /// Highest pending depth the submission queue reached. With the
    /// pause-stage-resume wrappers this equals `unique` (the whole batch
    /// is staged before execution starts), deterministically.
    pub queue_high_water: usize,
    /// Requests shed with [`DesyncError::QueueFull`] (always zero for the
    /// synchronous wrappers, which run an unbounded queue).
    pub shed: usize,
    /// Worker panics contained into per-request
    /// [`DesyncError::StagePanicked`] results (counted inside `failures`).
    pub panics_contained: usize,
    /// Requests resolved [`DesyncError::Cancelled`].
    pub cancelled: usize,
    /// Requests resolved [`DesyncError::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Per-tenant scheduling counters, in first-submission order. One
    /// entry ([`TenantId::DEFAULT`](crate::TenantId::DEFAULT)) for an
    /// untagged batch.
    pub tenants: Vec<TenantCounters>,
    /// Per-lane scheduling counters, highest priority first.
    pub lanes: Vec<LaneCounters>,
}

/// Renders the shared per-tenant / per-lane block of the service reports.
fn write_scheduling_block(
    f: &mut fmt::Formatter<'_>,
    tenants: &[TenantCounters],
    lanes: &[LaneCounters],
) -> fmt::Result {
    for t in tenants {
        write!(
            f,
            "\n  tenant {}: {} submitted, {} dispatched, {} shed, \
             waits sum {} max {} tick(s), high water {}",
            t.tenant,
            t.submitted,
            t.dispatched,
            t.shed,
            t.wait_ticks,
            t.max_wait_ticks,
            t.high_water
        )?;
    }
    if lanes.iter().any(|l| l.submitted > 0) {
        write!(f, "\n  lanes:")?;
        for (i, l) in lanes.iter().enumerate() {
            let sep = if i == 0 { " " } else { ", " };
            write!(f, "{sep}{} {}/{}", l.priority, l.dispatched, l.submitted)?;
        }
        let aged: usize = lanes.iter().map(|l| l.aged_promotions).sum();
        write!(f, " dispatched/submitted, {aged} aged promotion(s)")?;
    }
    Ok(())
}

impl fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service batch: {} request(s), {} unique ({} coalesced), {} worker(s), wall {} us",
            self.requests,
            self.unique,
            self.coalesced,
            self.workers,
            self.wall.as_micros()
        )?;
        writeln!(
            f,
            "  store: {} hit(s) / {} miss(es), {} eviction(s), {} weight resident; {} failure(s)",
            self.cache_hits, self.cache_misses, self.evictions, self.resident_weight, self.failures
        )?;
        writeln!(
            f,
            "  lint: {} rejection(s) at admission, {} report(s) served from cache",
            self.lint_rejections, self.lint_cache_hits
        )?;
        write!(
            f,
            "  queue: high water {}, {} shed, {} panic(s) contained, {} cancelled, {} past deadline",
            self.queue_high_water,
            self.shed,
            self.panics_contained,
            self.cancelled,
            self.deadline_exceeded
        )?;
        write_scheduling_block(f, &self.tenants, &self.lanes)
    }
}

/// Everything [`DesyncService::run_sweep`] produces.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One result per submitted sweep point, in request order. Coalesced
    /// points hold clones of their group's shared report.
    pub results: Vec<Result<EquivalenceReport, DesyncError>>,
    /// The sweep statistics.
    pub report: SweepReport,
}

/// Everything [`DesyncService::run_campaign`] produces.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One result per submitted campaign point, in request order.
    /// Coalesced points hold clones of their group's shared report.
    pub results: Vec<Result<MultiSeedReport, DesyncError>>,
    /// The campaign statistics ([`SweepReport::per_worker_events`] counts
    /// word-level committed events — one per packed net change).
    pub report: SweepReport,
    /// Scalar-equivalent lane events the campaign's simulations committed:
    /// what 64 scalar sweep points would have had to simulate to produce
    /// the same per-lane verdicts. The packed-over-scalar throughput win
    /// is this number against the same wall clock.
    pub lane_events_simulated: usize,
}

/// Statistics of one [`DesyncService::run_sweep`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Sweep points submitted.
    pub points: usize,
    /// Distinct verifications after coalescing.
    pub unique: usize,
    /// Points served by another point's verification (`points - unique`).
    pub coalesced: usize,
    /// Worker threads the sweep actually used.
    pub workers: usize,
    /// Wall time of the whole sweep.
    pub wall: Duration,
    /// Simulations that reused an already compiled model instead of
    /// recompiling topology (compiled-model store hits during the sweep).
    pub compile_reuses: usize,
    /// Timed stages served by re-binding matched delays from a cached
    /// margin-independent sizing analysis (sizing store hits).
    pub rebinds: usize,
    /// Sync reference runs served from the store during the sweep.
    pub sync_run_hits: usize,
    /// Sync reference runs that had to simulate (one per distinct sync
    /// side when the store starts cold).
    pub sync_run_misses: usize,
    /// Engine stage-cache hits during the sweep.
    pub cache_hits: usize,
    /// Engine stage-cache misses during the sweep.
    pub cache_misses: usize,
    /// Artifact computations that coalesced onto another worker's
    /// in-flight computation at the store (the exactly-once guarantee
    /// under parallel scheduling).
    pub store_coalesced: usize,
    /// Events actually committed by each worker's simulations, indexed by
    /// worker. The total is scheduling-independent; the split shows the
    /// load balance.
    pub per_worker_events: Vec<usize>,
    /// Points rejected at admission by the static pre-flight lint
    /// (counted inside `failures` too).
    pub lint_rejections: usize,
    /// Lint pre-flight reports served from the engine's store instead of
    /// re-analyzed.
    pub lint_cache_hits: usize,
    /// Points whose result is an error.
    pub failures: usize,
    /// Highest pending depth the submission queue reached (equals `unique`
    /// under the pause-stage-resume wrappers, deterministically).
    pub queue_high_water: usize,
    /// Points shed with [`DesyncError::QueueFull`] (always zero for the
    /// synchronous wrappers, which run an unbounded queue).
    pub shed: usize,
    /// Worker panics contained into per-point
    /// [`DesyncError::StagePanicked`] results (counted inside `failures`).
    pub panics_contained: usize,
    /// Points resolved [`DesyncError::Cancelled`].
    pub cancelled: usize,
    /// Points resolved [`DesyncError::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Per-tenant scheduling counters, in first-submission order.
    pub tenants: Vec<TenantCounters>,
    /// Per-lane scheduling counters, highest priority first.
    pub lanes: Vec<LaneCounters>,
}

impl SweepReport {
    /// Events committed across all workers.
    pub fn events_simulated(&self) -> usize {
        self.per_worker_events.iter().sum()
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verification sweep: {} point(s), {} unique ({} coalesced), {} worker(s), wall {} us",
            self.points,
            self.unique,
            self.coalesced,
            self.workers,
            self.wall.as_micros()
        )?;
        writeln!(
            f,
            "  reuse: {} compiled-model reuse(s), {} sizing rebind(s), \
             sync runs {} hit(s) / {} miss(es), {} in-flight coalesced",
            self.compile_reuses,
            self.rebinds,
            self.sync_run_hits,
            self.sync_run_misses,
            self.store_coalesced,
        )?;
        writeln!(
            f,
            "  events per worker: {:?} ({} total); {} failure(s)",
            self.per_worker_events,
            self.events_simulated(),
            self.failures
        )?;
        writeln!(
            f,
            "  lint: {} rejection(s) at admission, {} report(s) served from cache",
            self.lint_rejections, self.lint_cache_hits
        )?;
        write!(
            f,
            "  queue: high water {}, {} shed, {} panic(s) contained, {} cancelled, {} past deadline",
            self.queue_high_water,
            self.shed,
            self.panics_contained,
            self.cancelled,
            self.deadline_exceeded
        )?;
        write_scheduling_block(f, &self.tenants, &self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellKind;

    fn pipeline3() -> Netlist {
        let mut n = Netlist::new("pipe3");
        let clk = n.add_input("clk");
        let a = n.add_input("a");
        let q0 = n.add_net("q0");
        let w0 = n.add_net("w0");
        let q1 = n.add_net("q1");
        let w1 = n.add_net("w1");
        let q2 = n.add_output("q2");
        n.add_dff("r0", a, clk, q0).unwrap();
        n.add_gate("g0", CellKind::Not, &[q0], w0).unwrap();
        n.add_dff("r1", w0, clk, q1).unwrap();
        n.add_gate("g1", CellKind::Buf, &[q1], w1).unwrap();
        n.add_dff("r2", w1, clk, q2).unwrap();
        n
    }

    #[test]
    fn batch_results_match_detached_flows_in_request_order() {
        let n = pipeline3();
        let mut other = pipeline3();
        other.set_name("other");
        let library = CellLibrary::generic_90nm();
        let service = DesyncService::with_engine(DesyncEngine::with_workers(2));
        let requests = vec![
            ServiceRequest::new(&n, &library, DesyncOptions::default()),
            ServiceRequest::new(&other, &library, DesyncOptions::default()),
            ServiceRequest::new(&n, &library, DesyncOptions::default().with_margin(0.2)),
        ];
        let outcome = service.run_batch(&requests);
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(outcome.report.coalesced, 0);
        assert_eq!(outcome.report.unique, 3);
        for (request, result) in requests.iter().zip(&outcome.results) {
            let fresh =
                crate::Desynchronizer::new(request.netlist, request.library, request.options)
                    .run()
                    .unwrap();
            assert_eq!(result.as_ref().unwrap(), &fresh);
        }
    }

    #[test]
    fn identical_requests_coalesce_onto_one_computation() {
        let n = pipeline3();
        let library = CellLibrary::generic_90nm();
        let service = DesyncService::with_engine(DesyncEngine::with_workers(2)).with_concurrency(4);
        let requests: Vec<_> = (0..6)
            .map(|_| ServiceRequest::new(&n, &library, DesyncOptions::default()))
            .collect();
        let outcome = service.run_batch(&requests);
        assert_eq!(outcome.report.requests, 6);
        assert_eq!(outcome.report.unique, 1);
        assert_eq!(outcome.report.coalesced, 5);
        assert_eq!(outcome.report.failures, 0);
        // One computation: the engine saw exactly one miss per construction
        // stage and zero hits (nobody raced the same key).
        assert_eq!(outcome.report.cache_misses, 4);
        assert_eq!(outcome.report.cache_hits, 0);
        let first = outcome.results[0].as_ref().unwrap();
        for result in &outcome.results[1..] {
            assert_eq!(result.as_ref().unwrap(), first);
        }
        // A second batch over the same request is served from the store.
        let outcome = service.run_batch(&requests[..2]);
        assert_eq!(outcome.report.cache_hits, 4);
        assert_eq!(outcome.report.cache_misses, 0);
        // The pre-flight lint of a clean design is cached alongside the
        // stages (counted separately, so the stage numbers above hold).
        assert_eq!(outcome.report.lint_cache_hits, 1);
        assert_eq!(outcome.report.lint_rejections, 0);
        let text = outcome.report.to_string();
        assert!(text.contains("coalesced"), "{text}");
        assert!(text.contains("eviction"), "{text}");
    }

    #[test]
    fn per_request_errors_fail_only_their_slot() {
        let n = pipeline3();
        let mut comb = Netlist::new("comb");
        let a = comb.add_input("a");
        let y = comb.add_output("y");
        comb.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let library = CellLibrary::generic_90nm();
        let service = DesyncService::with_engine(DesyncEngine::with_workers(1));
        let requests = vec![
            ServiceRequest::new(&n, &library, DesyncOptions::default()),
            ServiceRequest::new(&comb, &library, DesyncOptions::default()),
            ServiceRequest::new(&n, &library, DesyncOptions::default().with_margin(-1.0)),
        ];
        let outcome = service.run_batch(&requests);
        assert!(outcome.results[0].is_ok());
        // The register-free netlist is turned away at admission: the lint
        // pre-flight catches FL001 before any stage would have reported
        // NoRegisters.
        match &outcome.results[1] {
            Err(DesyncError::LintRejected(report)) => {
                assert!(report.has(desync_lint::LintCode::NoRegisters), "{report}");
            }
            other => panic!("expected a lint rejection, got {other:?}"),
        }
        // Invalid options still fail at flow construction, before lint.
        assert!(matches!(
            outcome.results[2],
            Err(DesyncError::InvalidOptions(_))
        ));
        assert_eq!(outcome.report.failures, 2);
        assert_eq!(outcome.report.lint_rejections, 1);
    }

    #[test]
    fn multi_driven_design_is_rejected_at_admission_without_stage_work() {
        // pipeline3 with a duplicate driver on q0: registers exist, so only
        // NL001 stands between this design and the construction stages.
        let mut n = pipeline3();
        let a = n.find_net("a").unwrap();
        let q0 = n.find_net("q0").unwrap();
        n.add_gate("dup", CellKind::Buf, &[a], q0).unwrap();
        let library = CellLibrary::generic_90nm();
        let service = DesyncService::with_engine(DesyncEngine::with_workers(2));
        let requests: Vec<_> = (0..3)
            .map(|_| ServiceRequest::new(&n, &library, DesyncOptions::default()))
            .collect();
        let outcome = service.run_batch(&requests);
        for result in &outcome.results {
            match result {
                Err(DesyncError::LintRejected(report)) => {
                    let d = report.find(desync_lint::LintCode::MultiDrivenNet).unwrap();
                    assert_eq!(d.subject.as_str(), "q0");
                    let drivers: Vec<_> = d.witness.iter().map(|s| s.as_str()).collect();
                    assert_eq!(drivers, vec!["r0", "dup"], "witness in cell-id order");
                }
                other => panic!("expected a lint rejection, got {other:?}"),
            }
        }
        assert_eq!(outcome.report.lint_rejections, 3);
        assert_eq!(outcome.report.failures, 3);
        // Zero stage computations: the stage-kind cache saw no traffic at
        // all — the lint pre-flight was the only work the batch did.
        assert_eq!(outcome.report.cache_misses, 0);
        assert_eq!(outcome.report.cache_hits, 0);
        // Resubmitting serves the cached lint report instead of re-linting.
        let outcome = service.run_batch(&requests[..1]);
        assert_eq!(outcome.report.lint_rejections, 1);
        assert_eq!(outcome.report.lint_cache_hits, 1);
        assert_eq!(outcome.report.cache_misses, 0);
        let text = outcome.report.to_string();
        assert!(text.contains("1 rejection(s) at admission"), "{text}");
        assert!(text.contains("1 report(s) served from cache"), "{text}");
    }

    #[test]
    fn lint_rejections_are_bit_identical_across_worker_counts() {
        let mut bad = pipeline3();
        let a = bad.find_net("a").unwrap();
        let q0 = bad.find_net("q0").unwrap();
        bad.add_gate("dup", CellKind::Buf, &[a], q0).unwrap();
        let good = pipeline3();
        let library = CellLibrary::generic_90nm();
        let run = |concurrency: usize| {
            let service = DesyncService::with_engine(DesyncEngine::with_workers(1))
                .with_concurrency(concurrency);
            let requests = vec![
                ServiceRequest::new(&bad, &library, DesyncOptions::default()),
                ServiceRequest::new(&good, &library, DesyncOptions::default()),
                ServiceRequest::new(&bad, &library, DesyncOptions::default().with_margin(0.2)),
            ];
            service.run_batch(&requests).results
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel, "results must not depend on scheduling");
        assert!(matches!(serial[0], Err(DesyncError::LintRejected(_))));
        assert!(serial[1].is_ok());
        // Same netlist under different options: the same lint verdict,
        // payload-equal diagnostics and witnesses.
        assert_eq!(serial[0], serial[2]);
    }

    #[test]
    fn sweep_points_are_gated_by_admission_too() {
        let mut bad = pipeline3();
        let a = bad.find_net("a").unwrap();
        let q0 = bad.find_net("q0").unwrap();
        bad.add_gate("dup", CellKind::Buf, &[a], q0).unwrap();
        let library = CellLibrary::generic_90nm();
        let stim = VectorSource::pseudo_random(vec![a], 3);
        let service = DesyncService::with_engine(DesyncEngine::with_workers(1));
        let requests = vec![SweepRequest::new(
            &bad,
            &library,
            DesyncOptions::default(),
            &stim,
            8,
        )];
        let outcome = service.run_sweep(&requests);
        assert!(matches!(
            outcome.results[0],
            Err(DesyncError::LintRejected(_))
        ));
        assert_eq!(outcome.report.lint_rejections, 1);
        assert_eq!(outcome.report.failures, 1);
        // No stage, simulation or compile work happened for the bad point.
        assert_eq!(outcome.report.cache_misses, 0);
        assert_eq!(outcome.report.sync_run_misses, 0);
        assert_eq!(outcome.report.events_simulated(), 0);
        let text = outcome.report.to_string();
        assert!(text.contains("rejection(s) at admission"), "{text}");
    }

    #[test]
    fn sweep_results_match_detached_serial_flows_in_request_order() {
        use crate::pipeline::DesyncFlow;
        use crate::Protocol;

        let n = pipeline3();
        let library = CellLibrary::generic_90nm();
        let a = n.find_net("a").unwrap();
        let stim = VectorSource::pseudo_random(vec![a], 11);
        let service = DesyncService::with_engine(DesyncEngine::with_workers(3)).with_concurrency(3);
        let mut requests = Vec::new();
        for &protocol in Protocol::all() {
            for margin in [0.05, 0.2] {
                let options = DesyncOptions::default()
                    .with_protocol(protocol)
                    .with_margin(margin);
                requests.push(SweepRequest::new(&n, &library, options, &stim, 12));
            }
        }
        // A duplicate of the first point: must coalesce onto one check.
        requests.push(requests[0]);

        let outcome = service.run_sweep(&requests);
        assert_eq!(outcome.results.len(), requests.len());
        assert_eq!(outcome.report.points, 7);
        assert_eq!(outcome.report.unique, 6);
        assert_eq!(outcome.report.coalesced, 1);
        assert_eq!(outcome.report.failures, 0);
        // Deterministic merge: each slot equals a fresh detached flow.
        for (request, result) in requests.iter().zip(&outcome.results) {
            let mut fresh =
                DesyncFlow::new(request.netlist, request.library, request.options).unwrap();
            fresh.set_verification(request.stimulus.clone(), request.cycles);
            assert_eq!(result.as_ref().unwrap(), fresh.verified().unwrap());
        }
        // Shared work was computed exactly once: one sync reference, one
        // sync + one datapath model, one sizing analysis (the second
        // margin re-bound from it).
        assert_eq!(outcome.report.sync_run_misses, 1);
        assert_eq!(outcome.report.sync_run_hits, 5);
        assert_eq!(outcome.report.compile_reuses, 5);
        assert_eq!(outcome.report.rebinds, 1);
        assert!(outcome.report.events_simulated() > 0);
        assert_eq!(
            outcome.report.per_worker_events.len(),
            outcome.report.workers
        );
        let text = outcome.report.to_string();
        assert!(text.contains("verification sweep"), "{text}");
        assert!(text.contains("rebind"), "{text}");
    }

    #[test]
    fn campaign_results_match_scalar_sweep_verdicts_per_lane() {
        use crate::Protocol;

        let n = pipeline3();
        let library = CellLibrary::generic_90nm();
        let a = n.find_net("a").unwrap();
        let seeds = [3u64, 5, 8, 13, 21];
        let packed = PackedVectorSource::pseudo_random(vec![a], &seeds);
        let service = DesyncService::with_engine(DesyncEngine::with_workers(2)).with_concurrency(2);
        let mut requests = Vec::new();
        for &protocol in Protocol::all() {
            let options = DesyncOptions::default().with_protocol(protocol);
            requests.push(CampaignRequest::new(&n, &library, options, &packed, 12));
        }
        // A duplicate of the first point: must coalesce onto one check.
        requests.push(requests[0]);

        let outcome = service.run_campaign(&requests);
        assert_eq!(outcome.results.len(), requests.len());
        assert_eq!(outcome.report.points, 4);
        assert_eq!(outcome.report.unique, 3);
        assert_eq!(outcome.report.coalesced, 1);
        assert_eq!(outcome.report.failures, 0);
        // One packed sync reference shared across protocols.
        assert_eq!(outcome.report.sync_run_misses, 1);
        assert_eq!(outcome.report.sync_run_hits, 2);
        // The packed word events are a fraction of the lane-equivalent
        // work the campaign actually verified.
        assert!(outcome.lane_events_simulated > outcome.report.events_simulated());

        // Each lane's verdict equals the scalar sweep point with that seed.
        let scalar_service =
            DesyncService::with_engine(DesyncEngine::with_workers(2)).with_concurrency(2);
        for (request, result) in requests.iter().zip(&outcome.results) {
            let report = result.as_ref().unwrap();
            assert_eq!(report.lanes, seeds.len());
            let scalar_stims: Vec<_> = seeds
                .iter()
                .map(|&seed| VectorSource::pseudo_random(vec![a], seed))
                .collect();
            let scalar_requests: Vec<_> = scalar_stims
                .iter()
                .map(|stim| {
                    SweepRequest::new(request.netlist, request.library, request.options, stim, 12)
                })
                .collect();
            let scalar = scalar_service.run_sweep(&scalar_requests);
            for (lane, scalar_result) in scalar.results.iter().enumerate() {
                let scalar_report = scalar_result.as_ref().unwrap();
                assert_eq!(
                    report.lane_equivalence[lane], scalar_report.equivalence,
                    "lane {lane} verdict must equal the scalar sweep point"
                );
                assert_eq!(report.compared_cycles[lane], scalar_report.compared_cycles);
            }
        }
    }

    #[test]
    fn sweep_errors_fail_only_their_point() {
        let n = pipeline3();
        let library = CellLibrary::generic_90nm();
        let a = n.find_net("a").unwrap();
        let stim = VectorSource::pseudo_random(vec![a], 3);
        let service = DesyncService::with_engine(DesyncEngine::with_workers(1));
        let requests = vec![
            SweepRequest::new(&n, &library, DesyncOptions::default(), &stim, 8),
            SweepRequest::new(
                &n,
                &library,
                DesyncOptions::default().with_margin(-1.0),
                &stim,
                8,
            ),
        ];
        let outcome = service.run_sweep(&requests);
        assert!(outcome.results[0].is_ok());
        assert!(matches!(
            outcome.results[1],
            Err(DesyncError::InvalidOptions(_))
        ));
        assert_eq!(outcome.report.failures, 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let service = DesyncService::with_engine(DesyncEngine::with_workers(1));
        let outcome = service.run_batch(&[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.report.requests, 0);
        assert_eq!(outcome.report.unique, 0);
        assert_eq!(outcome.report.coalesced, 0);
    }
}
