//! Flow-equivalence verification: gate-level co-simulation of the original
//! synchronous netlist and its desynchronized counterpart, followed by a
//! comparison of the per-register capture streams.
//!
//! Flow equivalence is the correctness criterion of the paper: for every
//! register, the sequence of values stored into it must be identical in the
//! two executions, even though the storing times differ. Here the original
//! flip-flop `r` is compared against the master latch `r__m` of the
//! desynchronized datapath — the master latch plays exactly the role of the
//! flip-flop's input edge.

use crate::flow::DesyncDesign;
use desync_mg::{FlowEquivalence, FlowTrace};
use desync_netlist::{CellLibrary, Netlist};
use desync_sim::{
    AsyncTestbench, CompiledModel, PackedAsyncTestbench, PackedSimRun, PackedSyncTestbench,
    PackedValue, PackedVectorSource, SimConfig, SimRun, SyncTestbench, VectorSource,
};
use desync_sta::TimingConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The outcome of a flow-equivalence check, together with the two underlying
/// simulation runs (so callers can also extract activity for power
/// comparisons without re-simulating).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceReport {
    /// The stream comparison verdict.
    pub equivalence: FlowEquivalence,
    /// Number of capture values compared per register.
    pub compared_cycles: usize,
    /// The synchronous simulation run.
    pub sync_run: SimRun,
    /// The desynchronized simulation run.
    pub async_run: SimRun,
}

impl EquivalenceReport {
    /// Whether the two executions are flow equivalent.
    pub fn is_equivalent(&self) -> bool {
        self.equivalence.is_equivalent()
    }

    /// The divergence window of a non-equivalent report: the earliest
    /// capture index at which any register's streams disagree, together
    /// with the sorted set of diverging registers. `None` when the report
    /// is equivalent (or the only failures are missing registers, which
    /// have no position).
    ///
    /// This is the evidence a root-cause investigation starts from — e.g.
    /// the pinned DLX/non-overlapping finding records *where* the program
    /// counter first departs from the synchronous reference.
    pub fn divergence(&self) -> Option<DivergenceWindow> {
        divergence_of(&self.equivalence)
    }
}

/// The divergence window of one [`FlowEquivalence`] verdict (see
/// [`EquivalenceReport::divergence`]).
fn divergence_of(equivalence: &FlowEquivalence) -> Option<DivergenceWindow> {
    let mismatches = &equivalence.mismatches;
    let first_cycle = mismatches.iter().map(|m| m.position).min()?;
    let mut registers: Vec<String> = mismatches.iter().map(|m| m.register.clone()).collect();
    registers.sort();
    registers.dedup();
    Some(DivergenceWindow {
        first_cycle,
        registers,
    })
}

/// Where a non-equivalent co-simulation first departs from the synchronous
/// reference, see [`EquivalenceReport::divergence`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivergenceWindow {
    /// The earliest capture index with a disagreement (first divergent
    /// cycle across all registers).
    pub first_cycle: usize,
    /// The registers whose capture streams diverge, sorted by name.
    pub registers: Vec<String>,
}

impl crate::store::Weigh for SimRun {
    /// Weight of a cached synchronous reference run: the retained memory is
    /// dominated by the capture streams and recorded waveforms, so weigh
    /// one unit per captured value and waveform change.
    fn weight(&self) -> usize {
        self.flow_trace.total_values()
            + self
                .waveforms
                .iter()
                .map(|(_, wave)| wave.len())
                .sum::<usize>()
            + self.cycles
    }
}

impl crate::store::Weigh for CompiledModel {
    /// Weight of a cached compiled simulation model: its flat-array
    /// footprint (CSR entries, pin lists, delays).
    fn weight(&self) -> usize {
        self.footprint()
    }
}

/// Builds the [`SimConfig`] matching a timing configuration, so STA, the
/// control model and the simulator agree on delays.
pub fn sim_config_from(timing: &TimingConfig) -> SimConfig {
    SimConfig {
        wire_delay_per_fanout_ps: timing.wire_delay_per_fanout_ps,
        clk_to_q_ps: timing.clk_to_q_ps,
        latch_d_to_q_ps: timing.latch_d_to_q_ps,
    }
}

/// Builds the [`SimConfig`] matching the timing configuration a design was
/// desynchronized with ([`sim_config_from`] over the design's options).
pub fn sim_config_for(design: &DesyncDesign) -> SimConfig {
    sim_config_from(&design.options().timing)
}

/// Runs just the synchronous reference side of a flow-equivalence check:
/// `cycles` clock cycles of `original` at `period_ps` under `stimulus`.
///
/// The result is a pure function of `(original, library, config, period_ps,
/// cycles, stimulus)` — the simulator is deterministic — which is what makes
/// it cacheable across knob sweeps: protocol and margin changes alter only
/// the desynchronized side, so [`DesyncEngine`](crate::DesyncEngine) and
/// [`DesyncFlow`](crate::DesyncFlow) key a reference-run cache on exactly
/// those inputs and feed [`verify_flow_equivalence_with_reference`].
///
/// # Errors
///
/// [`NetlistError::ClockError`](desync_netlist::NetlistError::ClockError)
/// if `original` does not have exactly one clock net.
pub fn sync_reference_run(
    original: &Netlist,
    library: &CellLibrary,
    config: SimConfig,
    period_ps: f64,
    cycles: usize,
    stimulus: &VectorSource,
) -> Result<SimRun, desync_netlist::NetlistError> {
    let mut sync_tb = SyncTestbench::new(original, library, config)?;
    Ok(sync_tb.run(cycles, period_ps, stimulus))
}

/// [`sync_reference_run`] over a pre-compiled simulation model of
/// `original`, so repeated reference runs (distinct stimuli or cycle
/// counts over one design) share a single topology compilation. The run is
/// bit-identical to [`sync_reference_run`] with the model's compile inputs.
///
/// # Errors
///
/// [`NetlistError::ClockError`](desync_netlist::NetlistError::ClockError)
/// if `original` does not have exactly one clock net.
pub fn sync_reference_run_with_model(
    original: &Netlist,
    model: &Arc<CompiledModel>,
    period_ps: f64,
    cycles: usize,
    stimulus: &VectorSource,
) -> Result<SimRun, desync_netlist::NetlistError> {
    let mut sync_tb = SyncTestbench::with_model(original, Arc::clone(model))?;
    Ok(sync_tb.run(cycles, period_ps, stimulus))
}

/// Runs the synchronous netlist and its desynchronized design on the same
/// input stream and checks flow equivalence over `cycles` captures.
///
/// The synchronous run uses the STA clock period of the design; the
/// desynchronized run uses the latch-enable schedule derived from the timed
/// control model, with the environment applying input vector *k* right
/// after the *k*-th capture of the input-fed master latches.
pub fn verify_flow_equivalence(
    original: &Netlist,
    design: &DesyncDesign,
    library: &CellLibrary,
    stimulus: &VectorSource,
    cycles: usize,
) -> Result<EquivalenceReport, desync_netlist::NetlistError> {
    let config = sim_config_for(design);
    let sync_run = sync_reference_run(
        original,
        library,
        config,
        design.synchronous_period_ps(),
        cycles,
        stimulus,
    )?;
    verify_flow_equivalence_with_reference(original, design, library, stimulus, cycles, sync_run)
}

/// [`verify_flow_equivalence`] with a pre-computed synchronous reference
/// run, so knob sweeps (protocol, margin) simulate the unchanged sync side
/// once instead of once per sweep point.
///
/// `sync_run` must come from [`sync_reference_run`] over the same
/// `(original, library, config, period, cycles, stimulus)` — the caches in
/// [`DesyncEngine`](crate::DesyncEngine) enforce this by construction. The
/// returned report is identical to a from-scratch
/// [`verify_flow_equivalence`] call.
///
/// # Panics
///
/// Panics if `sync_run` covers a different number of cycles than `cycles`
/// — the one key component a [`SimRun`] carries. (A mismatched reference
/// would otherwise silently shrink the compared prefix and could report
/// equivalence over fewer captures than requested.)
pub fn verify_flow_equivalence_with_reference(
    original: &Netlist,
    design: &DesyncDesign,
    library: &CellLibrary,
    stimulus: &VectorSource,
    cycles: usize,
    sync_run: SimRun,
) -> Result<EquivalenceReport, desync_netlist::NetlistError> {
    let model = Arc::new(CompiledModel::compile(
        design.latch_netlist(),
        library,
        sim_config_for(design),
    ));
    verify_flow_equivalence_with_parts(original, design, stimulus, cycles, sync_run, &model)
}

/// [`verify_flow_equivalence_with_reference`] over a pre-compiled model of
/// the desynchronized datapath, so every point of a protocol × margin sweep
/// binds its enable schedule onto one shared [`CompiledModel`] instead of
/// recompiling the latch netlist's topology per point.
///
/// `async_model` must be compiled from `design.latch_netlist()` under
/// [`sim_config_for`]`(design)` — the caches in
/// [`DesyncEngine`](crate::DesyncEngine) enforce this by construction. The
/// returned report is identical to a from-scratch
/// [`verify_flow_equivalence`] call.
///
/// # Panics
///
/// Panics if `sync_run` covers a different number of cycles than `cycles`
/// (see [`verify_flow_equivalence_with_reference`]), or if `async_model`
/// was compiled from a different netlist structure.
pub fn verify_flow_equivalence_with_parts(
    original: &Netlist,
    design: &DesyncDesign,
    stimulus: &VectorSource,
    cycles: usize,
    sync_run: SimRun,
    async_model: &Arc<CompiledModel>,
) -> Result<EquivalenceReport, desync_netlist::NetlistError> {
    assert_eq!(
        sync_run.cycles, cycles,
        "sync reference run covers {} cycles but the equivalence check asked for {cycles}; \
         compute the reference with the same cycle count (see sync_reference_run)",
        sync_run.cycles,
    );

    // Desynchronized run: enables from the control model, inputs retimed to
    // the captures of the input-fed master latches. The schedule starts only
    // after the simulator has had one full synchronous period to settle the
    // combinational logic from the reset state, so no enable event can race
    // the initialization wave.
    let start_offset = design.synchronous_period_ps() + 1_000.0;
    let bundle = design.enable_schedule(cycles + 2, start_offset);
    let latch_netlist = design.latch_netlist();
    let mut inputs = Vec::new();
    // Map the original primary-input net names onto the latch netlist.
    for (k, &t) in bundle.input_vector_times.iter().enumerate() {
        if k >= cycles {
            break;
        }
        for (net, value) in stimulus.vector_for(k) {
            let name = original.net(net).name;
            if let Some(mapped) = latch_netlist.find_net_symbol(name) {
                inputs.push((t, mapped, value));
            }
        }
    }
    let mut async_tb = AsyncTestbench::with_model(latch_netlist, Arc::clone(async_model));
    let duration = bundle.horizon_ps + design.cycle_time_ps() + 1_000.0;
    let async_run = async_tb.run(duration, cycles, &bundle.schedule, &inputs);

    // Rename master-latch streams back to the original flip-flop names (one
    // stream move per register, not one push per captured value).
    let mut mapped = FlowTrace::new();
    for pair in &design.latch_design().pairs {
        if let Some(stream) = async_run.flow_trace.stream(&pair.master) {
            mapped.extend_stream(pair.register_name.clone(), stream.to_vec());
        }
    }
    // Compare on the common prefix, capped by the requested cycle count.
    let limit = cycles
        .min(mapped.min_stream_len())
        .min(sync_run.flow_trace.min_stream_len());
    let equivalence = FlowEquivalence::compare_prefix(&sync_run.flow_trace, &mapped, limit);
    Ok(EquivalenceReport {
        equivalence,
        compared_cycles: limit,
        sync_run,
        async_run,
    })
}

/// The outcome of a multi-seed (packed) flow-equivalence campaign point:
/// one per-lane verdict for each stimulus seed, plus the word- and
/// lane-level event accounting of the two packed runs.
///
/// Unlike [`EquivalenceReport`] this does not retain the simulation runs —
/// a 64-lane campaign point would otherwise hold 64 full capture/waveform
/// sets; the per-lane verdicts and counters are what sweeps aggregate.
/// Lane order follows the stimulus lane order, so verdicts merge
/// deterministically regardless of worker scheduling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiSeedReport {
    /// Number of stimulus lanes verified (1..=64).
    pub lanes: usize,
    /// Per-lane stream-comparison verdicts, in stimulus lane order.
    pub lane_equivalence: Vec<FlowEquivalence>,
    /// Per-lane number of capture values compared per register.
    pub compared_cycles: Vec<usize>,
    /// Word events committed by the packed synchronous reference run.
    pub sync_word_events: usize,
    /// Scalar-equivalent events of the synchronous side (sum over lanes).
    pub sync_lane_events: usize,
    /// Word events committed by the packed desynchronized run.
    pub async_word_events: usize,
    /// Scalar-equivalent events of the desynchronized side (sum over lanes).
    pub async_lane_events: usize,
}

impl MultiSeedReport {
    /// Number of lanes whose executions are flow equivalent.
    pub fn equivalent_lanes(&self) -> usize {
        self.lane_equivalence
            .iter()
            .filter(|eq| eq.is_equivalent())
            .count()
    }

    /// Whether every lane is flow equivalent.
    pub fn is_equivalent(&self) -> bool {
        self.equivalent_lanes() == self.lanes
    }

    /// Whether lane `lane` is flow equivalent.
    pub fn lane_is_equivalent(&self, lane: usize) -> bool {
        self.lane_equivalence[lane].is_equivalent()
    }

    /// The divergence window of lane `lane`, `None` when it is equivalent
    /// (see [`EquivalenceReport::divergence`]).
    pub fn lane_divergence(&self, lane: usize) -> Option<DivergenceWindow> {
        divergence_of(&self.lane_equivalence[lane])
    }

    /// Total word events committed across both packed runs (the work the
    /// kernel actually did).
    pub fn word_events(&self) -> usize {
        self.sync_word_events + self.async_word_events
    }

    /// Total scalar-equivalent lane events across both packed runs (what an
    /// equivalent all-scalar campaign would have committed).
    pub fn lane_events(&self) -> usize {
        self.sync_lane_events + self.async_lane_events
    }
}

impl crate::store::Weigh for PackedSimRun {
    /// Weight of a cached packed reference run: the sum of its extracted
    /// per-lane runs' weights.
    fn weight(&self) -> usize {
        self.lane_runs
            .iter()
            .map(crate::store::Weigh::weight)
            .sum::<usize>()
            .max(1)
    }
}

/// The packed counterpart of [`sync_reference_run_with_model`]: one packed
/// synchronous run carrying every stimulus lane, over the *same* compiled
/// models the scalar path caches. Each extracted lane is bit-identical to
/// [`sync_reference_run`] with that lane's stimulus.
///
/// # Errors
///
/// [`NetlistError::ClockError`](desync_netlist::NetlistError::ClockError)
/// if `original` does not have exactly one clock net.
pub fn packed_sync_reference_run_with_model(
    original: &Netlist,
    model: &Arc<CompiledModel>,
    period_ps: f64,
    cycles: usize,
    stimulus: &PackedVectorSource,
) -> Result<PackedSimRun, desync_netlist::NetlistError> {
    let mut sync_tb =
        PackedSyncTestbench::with_model(original, Arc::clone(model), stimulus.lanes())?;
    Ok(sync_tb.run(cycles, period_ps, stimulus))
}

/// [`packed_sync_reference_run_with_model`] with a private compile.
///
/// # Errors
///
/// [`NetlistError::ClockError`](desync_netlist::NetlistError::ClockError)
/// if `original` does not have exactly one clock net.
pub fn packed_sync_reference_run(
    original: &Netlist,
    library: &CellLibrary,
    config: SimConfig,
    period_ps: f64,
    cycles: usize,
    stimulus: &PackedVectorSource,
) -> Result<PackedSimRun, desync_netlist::NetlistError> {
    let model = Arc::new(CompiledModel::compile(original, library, config));
    packed_sync_reference_run_with_model(original, &model, period_ps, cycles, stimulus)
}

/// The multi-seed packed path of [`verify_flow_equivalence`]: verifies all
/// stimulus lanes of `stimulus` in one packed co-simulation pass — two
/// packed runs instead of `2 × lanes` scalar runs — and reports one
/// per-lane verdict each.
///
/// Each lane's verdict is bit-identical to the `equivalence` of a scalar
/// [`verify_flow_equivalence`] call with that lane's stimulus (the golden
/// suite `sim_packed_golden.rs` pins this).
pub fn verify_flow_equivalence_packed(
    original: &Netlist,
    design: &DesyncDesign,
    library: &CellLibrary,
    stimulus: &PackedVectorSource,
    cycles: usize,
) -> Result<MultiSeedReport, desync_netlist::NetlistError> {
    let config = sim_config_for(design);
    let sync_run = packed_sync_reference_run(
        original,
        library,
        config,
        design.synchronous_period_ps(),
        cycles,
        stimulus,
    )?;
    let async_model = Arc::new(CompiledModel::compile(
        design.latch_netlist(),
        library,
        config,
    ));
    verify_flow_equivalence_packed_with_parts(
        original,
        design,
        stimulus,
        cycles,
        &sync_run,
        &async_model,
    )
}

/// [`verify_flow_equivalence_packed`] over a pre-computed packed reference
/// run and a pre-compiled model of the desynchronized datapath — the
/// campaign fast path, mirroring [`verify_flow_equivalence_with_parts`].
///
/// `sync_run` must come from [`packed_sync_reference_run`] over the same
/// `(original, library, config, period, cycles, stimulus)`, and
/// `async_model` from `design.latch_netlist()` under
/// [`sim_config_for`]`(design)` — the caches in
/// [`DesyncEngine`](crate::DesyncEngine) enforce this by construction.
///
/// # Panics
///
/// Panics if `sync_run` covers a different lane or cycle count than
/// `stimulus` and `cycles`, or if `async_model` was compiled from a
/// different netlist structure.
pub fn verify_flow_equivalence_packed_with_parts(
    original: &Netlist,
    design: &DesyncDesign,
    stimulus: &PackedVectorSource,
    cycles: usize,
    sync_run: &PackedSimRun,
    async_model: &Arc<CompiledModel>,
) -> Result<MultiSeedReport, desync_netlist::NetlistError> {
    assert_eq!(
        sync_run.lanes(),
        stimulus.lanes(),
        "packed sync reference carries {} lanes but the stimulus has {}",
        sync_run.lanes(),
        stimulus.lanes(),
    );
    for lane_run in &sync_run.lane_runs {
        assert_eq!(
            lane_run.cycles, cycles,
            "sync reference run covers {} cycles but the equivalence check asked for {cycles}; \
             compute the reference with the same cycle count (see packed_sync_reference_run)",
            lane_run.cycles,
        );
    }

    // Identical setup to the scalar path: the enable schedule and the input
    // vector times are stimulus-independent, so they are computed once and
    // shared by every lane; only the input *payloads* widen.
    let start_offset = design.synchronous_period_ps() + 1_000.0;
    let bundle = design.enable_schedule(cycles + 2, start_offset);
    let latch_netlist = design.latch_netlist();
    let mut inputs: Vec<(f64, desync_netlist::NetId, PackedValue)> = Vec::new();
    for (k, &t) in bundle.input_vector_times.iter().enumerate() {
        if k >= cycles {
            break;
        }
        for (net, value) in stimulus.packed_vector_for(k) {
            let name = original.net(net).name;
            if let Some(mapped) = latch_netlist.find_net_symbol(name) {
                inputs.push((t, mapped, value));
            }
        }
    }
    let mut async_tb =
        PackedAsyncTestbench::with_model(latch_netlist, Arc::clone(async_model), stimulus.lanes());
    let duration = bundle.horizon_ps + design.cycle_time_ps() + 1_000.0;
    let async_run = async_tb.run(duration, cycles, &bundle.schedule, &inputs);

    let mut lane_equivalence = Vec::with_capacity(stimulus.lanes());
    let mut compared_cycles = Vec::with_capacity(stimulus.lanes());
    for lane in 0..stimulus.lanes() {
        let sync_lane = &sync_run.lane_runs[lane];
        let async_lane = &async_run.lane_runs[lane];
        let mut mapped = FlowTrace::new();
        for pair in &design.latch_design().pairs {
            if let Some(stream) = async_lane.flow_trace.stream(&pair.master) {
                mapped.extend_stream(pair.register_name.clone(), stream.to_vec());
            }
        }
        let limit = cycles
            .min(mapped.min_stream_len())
            .min(sync_lane.flow_trace.min_stream_len());
        lane_equivalence.push(FlowEquivalence::compare_prefix(
            &sync_lane.flow_trace,
            &mapped,
            limit,
        ));
        compared_cycles.push(limit);
    }
    Ok(MultiSeedReport {
        lanes: stimulus.lanes(),
        lane_equivalence,
        compared_cycles,
        sync_word_events: sync_run.word_committed_events,
        sync_lane_events: sync_run.lane_committed_events(),
        async_word_events: async_run.word_committed_events,
        async_lane_events: async_run.lane_committed_events(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Desynchronizer;
    use crate::options::DesyncOptions;
    use crate::Protocol;
    use desync_netlist::{CellKind, Value};

    fn lib() -> CellLibrary {
        CellLibrary::generic_90nm()
    }

    /// A 3-stage pipeline with an XOR mixing stage.
    fn pipeline() -> Netlist {
        let mut n = Netlist::new("pipe");
        let clk = n.add_input("clk");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let q0 = n.add_net("q0");
        let q1 = n.add_net("q1");
        let w0 = n.add_net("w0");
        let w1 = n.add_net("w1");
        let q2 = n.add_net("q2");
        let q3 = n.add_output("q3");
        n.add_dff("r0", a, clk, q0).unwrap();
        n.add_dff("r1", b, clk, q1).unwrap();
        n.add_gate("g0", CellKind::Xor, &[q0, q1], w0).unwrap();
        n.add_dff("r2", w0, clk, q2).unwrap();
        n.add_gate("g1", CellKind::Not, &[q2], w1).unwrap();
        n.add_dff("r3", w1, clk, q3).unwrap();
        n
    }

    /// A self-contained circuit (no data inputs): a 3-bit counter.
    fn counter() -> Netlist {
        let mut n = Netlist::new("cnt");
        let clk = n.add_input("clk");
        let q: Vec<_> = (0..3).map(|i| n.add_net(format!("q{i}"))).collect();
        // d0 = !q0; d1 = q1 ^ q0; d2 = q2 ^ (q1 & q0)
        let d0 = n.add_net("d0");
        let d1 = n.add_net("d1");
        let d2 = n.add_net("d2");
        let c01 = n.add_net("c01");
        n.add_gate("i0", CellKind::Not, &[q[0]], d0).unwrap();
        n.add_gate("x1", CellKind::Xor, &[q[1], q[0]], d1).unwrap();
        n.add_gate("a1", CellKind::And, &[q[1], q[0]], c01).unwrap();
        n.add_gate("x2", CellKind::Xor, &[q[2], c01], d2).unwrap();
        n.add_dff("cnt_ff[0]", d0, clk, q[0]).unwrap();
        n.add_dff("cnt_ff[1]", d1, clk, q[1]).unwrap();
        n.add_dff("cnt_ff[2]", d2, clk, q[2]).unwrap();
        for &qi in &q {
            n.mark_output(qi);
        }
        n
    }

    #[test]
    fn counter_is_flow_equivalent_without_stimulus() {
        let n = counter();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let report =
            verify_flow_equivalence(&n, &design, &library, &VectorSource::constant(vec![]), 20)
                .unwrap();
        assert!(report.is_equivalent(), "{}", report.equivalence);
        assert!(report.compared_cycles >= 15);
        assert!(report.sync_run.activity.total_transitions() > 0);
        assert!(report.async_run.activity.total_transitions() > 0);
    }

    #[test]
    fn pipeline_is_flow_equivalent_under_random_stimulus() {
        let n = pipeline();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        let stim = VectorSource::pseudo_random(vec![a, b], 7);
        let report = verify_flow_equivalence(&n, &design, &library, &stim, 24).unwrap();
        assert!(report.is_equivalent(), "{}", report.equivalence);
        assert!(report.compared_cycles >= 20);
    }

    #[test]
    fn pipeline_is_flow_equivalent_for_every_protocol() {
        let n = pipeline();
        let library = lib();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        for &protocol in Protocol::all() {
            let design = Desynchronizer::new(
                &n,
                &library,
                DesyncOptions::default().with_protocol(protocol),
            )
            .run()
            .unwrap();
            let stim = VectorSource::sequence(vec![
                vec![(a, Value::One), (b, Value::Zero)],
                vec![(a, Value::Zero), (b, Value::One)],
                vec![(a, Value::One), (b, Value::One)],
            ]);
            let report = verify_flow_equivalence(&n, &design, &library, &stim, 18).unwrap();
            assert!(
                report.is_equivalent(),
                "protocol {protocol}: {}",
                report.equivalence
            );
        }
    }

    #[test]
    fn precomputed_reference_yields_identical_report() {
        let n = pipeline();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        let stim = VectorSource::pseudo_random(vec![a, b], 99);
        let fresh = verify_flow_equivalence(&n, &design, &library, &stim, 16).unwrap();
        // The same check fed a pre-computed sync reference run (what the
        // engine cache serves during sweeps) must reproduce the report
        // bit for bit — including the embedded sync run itself.
        let config = sim_config_for(&design);
        let reference = sync_reference_run(
            &n,
            &library,
            config,
            design.synchronous_period_ps(),
            16,
            &stim,
        )
        .unwrap();
        assert_eq!(reference, fresh.sync_run);
        let cached =
            verify_flow_equivalence_with_reference(&n, &design, &library, &stim, 16, reference)
                .unwrap();
        assert_eq!(fresh, cached);
    }

    #[test]
    fn packed_multi_seed_matches_scalar_verdicts_per_lane() {
        let n = pipeline();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let a = n.find_net("a").unwrap();
        let b = n.find_net("b").unwrap();
        let seeds = [3u64, 5, 8, 13];
        let packed = PackedVectorSource::pseudo_random(vec![a, b], &seeds);
        let report = verify_flow_equivalence_packed(&n, &design, &library, &packed, 20).unwrap();
        assert_eq!(report.lanes, seeds.len());
        assert!(report.is_equivalent());
        assert!(report.word_events() > 0);
        assert!(report.lane_events() >= report.word_events());
        let mut sync_lane_events = 0;
        let mut async_lane_events = 0;
        for (lane, &seed) in seeds.iter().enumerate() {
            let stim = VectorSource::pseudo_random(vec![a, b], seed);
            let scalar = verify_flow_equivalence(&n, &design, &library, &stim, 20).unwrap();
            assert_eq!(
                report.lane_equivalence[lane], scalar.equivalence,
                "lane {lane}"
            );
            assert_eq!(report.compared_cycles[lane], scalar.compared_cycles);
            assert!(report.lane_is_equivalent(lane));
            assert!(report.lane_divergence(lane).is_none());
            sync_lane_events += scalar.sync_run.committed_events;
            async_lane_events += scalar.async_run.committed_events;
        }
        // The packed lane-event accounting is exactly what the scalar runs
        // would have committed, while the word-event work is far smaller.
        assert_eq!(report.sync_lane_events, sync_lane_events);
        assert_eq!(report.async_lane_events, async_lane_events);
        assert!(report.sync_word_events <= sync_lane_events);
        assert!(report.async_word_events <= async_lane_events);
    }

    #[test]
    fn sim_config_matches_timing_options() {
        let n = counter();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let cfg = sim_config_for(&design);
        assert_eq!(cfg.latch_d_to_q_ps, design.options().timing.latch_d_to_q_ps);
        assert_eq!(cfg.clk_to_q_ps, design.options().timing.clk_to_q_ps);
    }
}
