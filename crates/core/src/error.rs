//! Error type of the desynchronization flow.

use desync_netlist::NetlistError;
use std::fmt;

/// Errors produced by the desynchronization flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesyncError {
    /// The input netlist is structurally invalid or uses features the flow
    /// does not support.
    Netlist(NetlistError),
    /// The input netlist has no flip-flops, so there is nothing to
    /// desynchronize.
    NoRegisters,
    /// The input netlist already contains level-sensitive latches; the flow
    /// expects a pure flip-flop design (paper Figure 1(a)).
    AlreadyLatchBased,
    /// The composed control model failed a correctness check.
    ModelCheck(String),
}

impl fmt::Display for DesyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesyncError::Netlist(e) => write!(f, "invalid input netlist: {e}"),
            DesyncError::NoRegisters => write!(f, "netlist has no flip-flops to desynchronize"),
            DesyncError::AlreadyLatchBased => {
                write!(f, "netlist already contains latches; expected a flip-flop design")
            }
            DesyncError::ModelCheck(msg) => write!(f, "control model check failed: {msg}"),
        }
    }
}

impl std::error::Error for DesyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesyncError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for DesyncError {
    fn from(e: NetlistError) -> Self {
        DesyncError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = DesyncError::from(NetlistError::DuplicateNet("x".into()));
        assert!(e.to_string().contains("invalid input netlist"));
        assert!(e.source().is_some());
        assert!(DesyncError::NoRegisters.source().is_none());
        assert!(DesyncError::NoRegisters.to_string().contains("no flip-flops"));
        assert!(DesyncError::AlreadyLatchBased.to_string().contains("latches"));
        assert!(DesyncError::ModelCheck("not live".into()).to_string().contains("not live"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DesyncError>();
    }
}
