//! Error types of the desynchronization flow.

use crate::submit::TenantId;
use desync_lint::LintReport;
use desync_netlist::NetlistError;
use std::fmt;
use std::sync::Arc;

/// Errors produced by the desynchronization flow.
#[derive(Debug, Clone, PartialEq)]
pub enum DesyncError {
    /// The input netlist is structurally invalid or uses features the flow
    /// does not support.
    Netlist(NetlistError),
    /// The input netlist has no flip-flops, so there is nothing to
    /// desynchronize.
    NoRegisters,
    /// The input netlist already contains level-sensitive latches; the flow
    /// expects a pure flip-flop design (paper Figure 1(a)).
    AlreadyLatchBased,
    /// The composed control model failed a correctness check.
    ModelCheck(String),
    /// The flow options contain a nonsensical knob value; rejected by
    /// [`DesyncOptions::validate`](crate::DesyncOptions::validate) before any
    /// stage runs.
    InvalidOptions(OptionsError),
    /// The verification stage was asked to run on a netlist that has data
    /// inputs, but no stimulus was configured via
    /// [`DesyncFlow::set_verification`](crate::DesyncFlow::set_verification).
    /// Without input vectors the equivalence check would pass vacuously.
    MissingStimulus,
    /// The design was rejected by the static pre-flight lint: the attached
    /// report carries every diagnostic with its witness. Produced by
    /// [`DesyncService`](crate::DesyncService) admission control before any
    /// stage computes (the report is `Arc`-shared, so cloning the error is
    /// cheap and payloads stay bit-identical across worker threads).
    LintRejected(Arc<LintReport>),
    /// The request was cancelled cooperatively before it completed: its
    /// [`CancelToken`](crate::CancelToken) fired, or the owning
    /// [`ServiceQueue`](crate::ServiceQueue) was dropped with the request
    /// still pending. Checked at every stage boundary of
    /// [`DesyncFlow`](crate::DesyncFlow), so a cancelled request stops at the
    /// next stage edge rather than mid-computation.
    Cancelled,
    /// The request's deadline elapsed before a stage boundary was reached.
    /// Like cancellation this is cooperative: deadlines are checked when the
    /// request is picked up and at every stage edge, never mid-stage.
    DeadlineExceeded,
    /// The submission queue was at its configured depth bound — or the
    /// submitting tenant at its quota — and the admission policy is
    /// [`AdmissionPolicy::RejectNew`](crate::AdmissionPolicy::RejectNew):
    /// the request was shed instead of enqueued. The payload is the
    /// admission state observed under the queue lock at shed time, so
    /// operators tuning depth/quota see exactly what tripped.
    QueueFull {
        /// Pending requests (all tenants) at shed time.
        depth: usize,
        /// The configured global depth bound (`None` = unbounded: the
        /// shed was caused by the tenant quota alone).
        capacity: Option<usize>,
        /// The tenant whose submission was shed.
        tenant: TenantId,
        /// The shedding tenant's own pending requests at shed time.
        tenant_depth: usize,
        /// The configured per-tenant quota (`None` = unquotaed: the shed
        /// was caused by the global depth bound alone).
        tenant_quota: Option<usize>,
    },
    /// A worker panicked while computing this request. The panic was
    /// contained per-request (`catch_unwind` at the queue worker), the stage
    /// that was executing is recorded, and neither the worker thread nor the
    /// store's in-flight registry is left wedged.
    StagePanicked {
        /// Name of the pipeline stage that was executing when the panic
        /// unwound (`"clustered"`, `"latched"`, `"timed"`, `"controlled"`,
        /// `"verified"`, or `"request"` if it fired outside any stage).
        stage: &'static str,
        /// The panic payload, if it was a string; a placeholder otherwise.
        message: String,
    },
    /// A fault-injection failpoint fired with an `Error` action. Only ever
    /// produced with the `failpoints` cargo feature enabled (the variant is
    /// unconditionally present so exhaustive matches don't grow
    /// feature-dependent arms).
    FaultInjected {
        /// The failpoint site that fired (e.g. `"stage::timed"`).
        site: &'static str,
    },
}

/// A rejected knob in [`DesyncOptions`](crate::DesyncOptions), produced by
/// [`DesyncOptions::validate`](crate::DesyncOptions::validate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptionsError {
    /// `matched_delay_margin` is negative: the matched delay would be sized
    /// *below* the combinational delay it must cover, breaking the central
    /// safety property of the method.
    NegativeMatchedDelayMargin(f64),
    /// `controller_delay_ps` is zero or negative: the timed control model
    /// would contain zero-delay cycles and its cycle-time analysis would be
    /// meaningless.
    NonPositiveControllerDelay(f64),
    /// A timing parameter that must be non-negative (wire load, setup,
    /// clock-to-Q, latch D-to-Q) is negative.
    NegativeTimingParameter {
        /// Qualified name of the offending
        /// [`TimingConfig`](desync_sta::TimingConfig) field
        /// (e.g. `"timing.setup_ps"`).
        parameter: &'static str,
        /// The rejected value, in picoseconds.
        value: f64,
    },
    /// A numeric knob is NaN or infinite.
    NonFiniteParameter {
        /// Qualified name of the offending field.
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::NegativeMatchedDelayMargin(v) => {
                write!(f, "matched_delay_margin must be >= 0, got {v}")
            }
            OptionsError::NonPositiveControllerDelay(v) => {
                write!(f, "controller_delay_ps must be > 0, got {v}")
            }
            OptionsError::NegativeTimingParameter { parameter, value } => {
                write!(f, "{parameter} must be >= 0, got {value}")
            }
            OptionsError::NonFiniteParameter { parameter, value } => {
                write!(f, "{parameter} must be finite, got {value}")
            }
        }
    }
}

impl fmt::Display for DesyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesyncError::Netlist(e) => write!(f, "invalid input netlist: {e}"),
            DesyncError::NoRegisters => write!(f, "netlist has no flip-flops to desynchronize"),
            DesyncError::AlreadyLatchBased => {
                write!(
                    f,
                    "netlist already contains latches; expected a flip-flop design"
                )
            }
            DesyncError::ModelCheck(msg) => write!(f, "control model check failed: {msg}"),
            DesyncError::InvalidOptions(e) => write!(f, "invalid flow options: {e}"),
            DesyncError::MissingStimulus => write!(
                f,
                "netlist has data inputs but no verification stimulus was set; \
                 call DesyncFlow::set_verification first"
            ),
            DesyncError::LintRejected(report) => {
                write!(
                    f,
                    "design rejected by static lint ({} error(s)): ",
                    report.num_errors()
                )?;
                match report.errors().next() {
                    Some(first) => write!(f, "{first}"),
                    None => write!(f, "no diagnostics recorded"),
                }
            }
            DesyncError::Cancelled => write!(f, "request was cancelled before it completed"),
            DesyncError::DeadlineExceeded => {
                write!(f, "request deadline elapsed before completion")
            }
            DesyncError::QueueFull {
                depth,
                capacity,
                tenant,
                tenant_depth,
                tenant_quota,
            } => {
                write!(f, "submission queue is full (depth {depth}")?;
                if let Some(capacity) = capacity {
                    write!(f, " of {capacity}")?;
                }
                write!(f, "; tenant {tenant}: {tenant_depth} pending")?;
                if let Some(quota) = tenant_quota {
                    write!(f, " of quota {quota}")?;
                }
                write!(f, "); request shed by admission policy")
            }
            DesyncError::StagePanicked { stage, message } => {
                write!(f, "worker panicked in stage '{stage}': {message}")
            }
            DesyncError::FaultInjected { site } => {
                write!(f, "injected fault fired at failpoint '{site}'")
            }
        }
    }
}

impl std::error::Error for DesyncError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DesyncError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for DesyncError {
    fn from(e: NetlistError) -> Self {
        DesyncError::Netlist(e)
    }
}

impl From<OptionsError> for DesyncError {
    fn from(e: OptionsError) -> Self {
        DesyncError::InvalidOptions(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = DesyncError::from(NetlistError::DuplicateNet("x".into()));
        assert!(e.to_string().contains("invalid input netlist"));
        assert!(e.source().is_some());
        assert!(DesyncError::NoRegisters.source().is_none());
        assert!(DesyncError::NoRegisters
            .to_string()
            .contains("no flip-flops"));
        assert!(DesyncError::AlreadyLatchBased
            .to_string()
            .contains("latches"));
        assert!(DesyncError::ModelCheck("not live".into())
            .to_string()
            .contains("not live"));
    }

    #[test]
    fn option_errors_display_the_offending_value() {
        let e = DesyncError::from(OptionsError::NegativeMatchedDelayMargin(-0.2));
        assert!(e.to_string().contains("-0.2"));
        assert!(e.to_string().contains("invalid flow options"));
        let e = OptionsError::NonPositiveControllerDelay(0.0);
        assert!(e.to_string().contains("controller_delay_ps"));
        let e = OptionsError::NegativeTimingParameter {
            parameter: "timing.setup_ps",
            value: -1.0,
        };
        assert!(e.to_string().contains("timing.setup_ps"));
        let e = OptionsError::NonFiniteParameter {
            parameter: "matched_delay_margin",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("finite"));
    }

    #[test]
    fn service_outcome_errors_display_their_cause() {
        assert!(DesyncError::Cancelled.to_string().contains("cancelled"));
        assert!(DesyncError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        let full = DesyncError::QueueFull {
            depth: 5,
            capacity: Some(5),
            tenant: TenantId::new(7),
            tenant_depth: 3,
            tenant_quota: Some(3),
        };
        assert!(full.to_string().contains("queue is full"), "{full}");
        assert!(full.to_string().contains("depth 5 of 5"), "{full}");
        assert!(full.to_string().contains("tenant 7"), "{full}");
        assert!(full.to_string().contains("3 pending of quota 3"), "{full}");
        let unbounded = DesyncError::QueueFull {
            depth: 4,
            capacity: None,
            tenant: TenantId::DEFAULT,
            tenant_depth: 4,
            tenant_quota: Some(4),
        };
        assert!(
            !unbounded.to_string().contains("of quota 4 of"),
            "{unbounded}"
        );
        assert!(unbounded.to_string().contains("depth 4;"), "{unbounded}");
        let e = DesyncError::StagePanicked {
            stage: "timed",
            message: "boom".into(),
        };
        assert!(e.to_string().contains("stage 'timed'"), "{e}");
        assert!(e.to_string().contains("boom"), "{e}");
        let e = DesyncError::FaultInjected {
            site: "store::insert",
        };
        assert!(e.to_string().contains("store::insert"), "{e}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DesyncError>();
    }

    #[test]
    fn lint_rejection_displays_the_first_error_and_compares_by_content() {
        use desync_lint::{Diagnostic, LintCode};
        let report = || {
            Arc::new(LintReport {
                diagnostics: vec![Diagnostic::new(
                    LintCode::MultiDrivenNet,
                    "bus".into(),
                    "driven 2 times",
                )],
            })
        };
        let e = DesyncError::LintRejected(report());
        assert!(e.to_string().contains("rejected by static lint"), "{e}");
        assert!(e.to_string().contains("NL001"), "{e}");
        assert!(e.to_string().contains("bus"), "{e}");
        // Distinct Arcs with equal payloads compare equal — the property the
        // cross-thread bit-identity guarantee rests on.
        assert_eq!(e, DesyncError::LintRejected(report()));
    }
}
