//! The asynchronous submission front-end: tagged submissions, priority
//! lanes, per-tenant fair scheduling, tickets, cancellation, deadlines and
//! per-request fault containment.
//!
//! [`ServiceQueue`] is the execution core that
//! [`DesyncService`](crate::DesyncService) layers its synchronous
//! `run_batch`/`run_sweep` wrappers over. Callers **submit** work — a
//! design request ([`QueueRequest`]) or a verification sweep point
//! ([`QueueSweepRequest`]) — and immediately receive a [`TicketHandle`]
//! they can poll, block on, or abandon; a fixed set of worker threads
//! drains the queue and resolves each ticket with a `Result`.
//!
//! # Lifecycle of a request: tag → lane → tenant-DRR → worker
//!
//! 1. **Tagging.** Every submission carries a [`SubmitMeta`] (on
//!    [`SubmitOptions`]): a [`TenantId`] naming who submitted it and a
//!    [`Priority`] naming how urgent it is. Untagged submissions default
//!    to [`TenantId::DEFAULT`] at [`Priority::Normal`] — a single-tenant,
//!    single-lane queue schedules exactly like the historical FIFO.
//! 2. **Admission.** Under the state lock the queue checks the global
//!    depth bound *and* the submitting tenant's quota
//!    ([`QueueConfig::tenant_quota`]). If either is exceeded, the
//!    configured [`AdmissionPolicy`] decides: `RejectNew` resolves the
//!    ticket right away with [`DesyncError::QueueFull`] (carrying the
//!    observed depth, capacity and the shedding tenant's quota state;
//!    counted in [`QueueCounters::shed`] and the tenant's
//!    [`TenantCounters::shed`]); `BlockSubmitter` parks the submitting
//!    thread until a slot frees. Because the quota is per tenant, both
//!    policies act on the *bursting* tenant while other tenants' traffic
//!    keeps flowing. A submission that arrives after shutdown began
//!    resolves [`DesyncError::Cancelled`] instead of enqueueing — it can
//!    never be picked up, so it must never park a waiter.
//! 3. **Lane selection.** Admitted requests land in the FIFO of their
//!    (tenant, lane) pair. Lanes are *strict*: a worker always dispatches
//!    from the highest non-empty lane. Priority preempts **dispatch
//!    order only** — running work is never interrupted.
//! 4. **Tenant DRR.** Within a lane, tenants are served deficit-round-
//!    robin: each tenant in turn dispatches up to
//!    [`QueueConfig::quantum`] requests (every request costs one deficit
//!    unit), then the turn rotates. A 500-request burst from one tenant
//!    therefore interleaves with another tenant's single request at
//!    quantum granularity instead of starving it.
//! 5. **Aging.** Strict lanes could starve low-priority work forever, so
//!    the scheduler keeps a logical clock that ticks once per dispatch.
//!    A request that has waited at least [`QueueConfig::aging_bound`]
//!    ticks is promoted: the globally oldest such request dispatches next,
//!    regardless of lane or DRR turn. This bounds every request's wait to
//!    `aging_bound + high_water` dispatch ticks (once aged, each tick
//!    dispatches the oldest pending submission, of which at most
//!    `high_water` precede it). The clock is logical, not wall-time, so
//!    the schedule stays bit-identical across worker counts and machines.
//! 6. **Pickup.** A worker pops the scheduled request (appending a
//!    [`DispatchRecord`] to the dispatch log), first checking its
//!    [`CancelToken`] and deadline — a request cancelled while queued is
//!    resolved [`DesyncError::Cancelled`] without touching the engine, an
//!    expired one [`DesyncError::DeadlineExceeded`].
//! 7. **Execution.** The worker runs the flow attached to the shared
//!    engine. The request's [`Interrupt`] travels inside the flow and is
//!    re-checked at **every stage boundary** (cooperative cancellation:
//!    a cancelled request stops at the next stage edge, never mid-stage).
//! 8. **Containment.** The whole execution runs under `catch_unwind`: a
//!    panicking stage resolves *that request's* ticket with
//!    [`DesyncError::StagePanicked`] (carrying the stage name from the
//!    sticky [`stage_trace`]) and the worker survives. The store's
//!    in-flight registry is unwound by its own drop guard, so followers of
//!    a failed leader retry instead of hanging — no wedged keys.
//! 9. **Resolution.** The ticket resolves exactly once (first write wins);
//!    waiters wake via condvar.
//!
//! Dropping the queue cancels every still-pending request in submission
//! order (their tickets resolve [`DesyncError::Cancelled`]), wakes any
//! submitter parked by `BlockSubmitter` (whose request also resolves
//! [`DesyncError::Cancelled`] rather than enqueueing into a queue nobody
//! will drain), lets in-progress work finish, and joins the workers — no
//! outstanding [`TicketHandle`] ever hangs.
//!
//! # Determinism
//!
//! The queue adds *scheduling*, never *content*: results are pure
//! functions of the request, so any interleaving of workers produces
//! bit-identical tickets. The scheduler itself is deterministic too: pops
//! are serialized under the state mutex and the next dispatch is a pure
//! function of (submission order, tags, quantum, aging bound) — never of
//! wall-clock time or worker identity. Given the same submission order the
//! dispatch log, per-tenant counters and per-lane counters are
//! bit-identical across 1, 2 or N workers. The sync wrappers additionally
//! need deterministic *admission*; they use [`ServiceQueue::pause`] /
//! [`ServiceQueue::resume`] to stage a whole batch before execution
//! starts, which pins [`QueueCounters::high_water`] (and, under a depth
//! bound or tenant quota, the shed pattern) independent of worker timing.

use crate::engine::DesyncEngine;
use crate::error::DesyncError;
use crate::failpoints;
use crate::flow::DesyncDesign;
use crate::options::DesyncOptions;
use crate::verify::{EquivalenceReport, MultiSeedReport};
use desync_netlist::{CellLibrary, Netlist};
use desync_sim::{PackedVectorSource, VectorSource};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Records which pipeline stage the current thread is executing, so panic
/// containment can name the stage that blew up.
///
/// The marker is **sticky**: a stage sets it on entry and nothing clears
/// it on exit — deliberately, because a panic unwinds through `Drop` impls
/// (which would wipe a guard-based marker before `catch_unwind` gets to
/// read it). The queue worker clears the marker before each request and
/// takes it after a catch, so the last stage entered before the panic is
/// exactly what the error reports.
pub(crate) mod stage_trace {
    use std::cell::Cell;

    thread_local! {
        static CURRENT: Cell<Option<&'static str>> = const { Cell::new(None) };
    }

    /// Marks `stage` as executing on this thread (sticky; see module doc).
    pub(crate) fn enter(stage: &'static str) {
        CURRENT.with(|c| c.set(Some(stage)));
    }

    /// Clears the marker (queue workers call this before each request).
    pub(crate) fn clear() {
        CURRENT.with(|c| c.set(None));
    }

    /// Takes the last stage entered on this thread, clearing the marker.
    pub(crate) fn take() -> Option<&'static str> {
        CURRENT.with(|c| c.take())
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Identifies the tenant (client, user, session) behind a submission, for
/// fair scheduling and per-tenant accounting. Plain numeric identity —
/// the queue attaches no meaning beyond equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(u32);

impl TenantId {
    /// The tenant every untagged submission is accounted to.
    pub const DEFAULT: TenantId = TenantId(0);

    /// A tenant with the given numeric identity.
    pub const fn new(id: u32) -> Self {
        Self(id)
    }

    /// The numeric identity.
    pub const fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The strict-priority lane of a submission. Higher lanes always dispatch
/// before lower ones (dispatch-order preemption only — running work is
/// never interrupted); within a lane, tenants share deficit-round-robin.
/// Anti-starvation aging ([`QueueConfig::aging_bound`]) bounds how long a
/// low lane can be bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: bulk sweeps, prefetching, speculative points.
    Low,
    /// The default lane; untagged submissions land here.
    #[default]
    Normal,
    /// Interactive work: dispatched before everything else.
    High,
}

impl Priority {
    /// Number of lanes.
    pub const LANES: usize = 3;

    /// The lane index (0 = [`Priority::Low`] … 2 = [`Priority::High`]).
    pub const fn lane(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    /// The priority of a lane index (inverse of [`Priority::lane`]).
    pub const fn from_lane(lane: usize) -> Priority {
        match lane {
            0 => Priority::Low,
            1 => Priority::Normal,
            _ => Priority::High,
        }
    }

    /// The lowercase lane name.
    pub const fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The scheduling tag of one submission: which tenant it belongs to and
/// which priority lane it dispatches from. Defaults reproduce the
/// historical untagged behaviour ([`TenantId::DEFAULT`],
/// [`Priority::Normal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SubmitMeta {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The strict-priority lane.
    pub priority: Priority,
}

impl SubmitMeta {
    /// The default tag: [`TenantId::DEFAULT`] at [`Priority::Normal`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the tag with a tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Returns the tag with a priority lane.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// A shared flag requesting cooperative cancellation of one request.
///
/// Cloning shares the flag. Cancellation is *cooperative*: the request
/// observes the token at pickup and at every [`DesyncFlow`](crate::DesyncFlow)
/// stage boundary, then resolves its ticket [`DesyncError::Cancelled`] —
/// an already-running stage finishes (its artifact may still be published
/// to the store, where it benefits other requests).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// The interrupt condition a request executes under: its cancel token plus
/// an optional absolute deadline. Checked at request pickup and at every
/// stage boundary of [`DesyncFlow`](crate::DesyncFlow).
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl Interrupt {
    /// An interrupt that never fires (detached flows default to this).
    pub fn none() -> Self {
        Self::default()
    }

    /// An interrupt observing `cancel` and, optionally, an absolute
    /// `deadline`.
    pub fn new(cancel: Option<CancelToken>, deadline: Option<Instant>) -> Self {
        Self { cancel, deadline }
    }

    /// Whether either condition could ever fire (used to skip per-stage
    /// checks entirely for plain synchronous flows).
    pub fn is_armed(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// Checks both conditions: cancellation wins over the deadline when
    /// both have fired.
    ///
    /// # Errors
    ///
    /// [`DesyncError::Cancelled`] / [`DesyncError::DeadlineExceeded`].
    pub fn check(&self) -> Result<(), DesyncError> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(DesyncError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(DesyncError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// The write-once result slot behind a [`TicketHandle`].
#[derive(Debug)]
struct TicketCell<T> {
    slot: Mutex<Option<Result<T, DesyncError>>>,
    ready: Condvar,
}

impl<T> TicketCell<T> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Resolves the ticket; the first write wins (a request cancelled in
    /// the same instant its worker finishes keeps exactly one outcome).
    fn resolve(&self, result: Result<T, DesyncError>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }
}

/// A per-request completion handle returned by
/// [`ServiceQueue::submit`] / [`ServiceQueue::submit_sweep`].
///
/// The handle is also the request's cancellation surface:
/// [`TicketHandle::cancel`] fires the request's [`CancelToken`].
#[derive(Debug)]
pub struct TicketHandle<T> {
    cell: Arc<TicketCell<T>>,
    cancel: CancelToken,
}

impl<T: Clone> TicketHandle<T> {
    /// Non-blocking completion check: `Some(result)` once resolved (the
    /// result is cloned out; [`TicketHandle::wait`] moves it instead).
    pub fn try_wait(&self) -> Option<Result<T, DesyncError>> {
        self.cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Blocks until resolution or `timeout`, whichever first.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, DesyncError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if slot.is_some() {
                return slot.clone();
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _timed_out) = self
                .cell
                .ready
                .wait_timeout(slot, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }
}

impl<T> TicketHandle<T> {
    /// Whether the request has resolved (without consuming the result).
    pub fn poll(&self) -> bool {
        self.cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Blocks until the request resolves and moves the result out.
    ///
    /// Resolution is guaranteed as long as the owning [`ServiceQueue`] is
    /// eventually dropped: every submitted request is executed, shed,
    /// drain-cancelled, or (when it arrives during shutdown) resolved
    /// [`DesyncError::Cancelled`] at admission.
    pub fn wait(self) -> Result<T, DesyncError> {
        let mut slot = self
            .cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .cell
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Requests cooperative cancellation of this request (see
    /// [`CancelToken`]). The ticket still resolves — with
    /// [`DesyncError::Cancelled`] if cancellation won, or with the result
    /// if the computation finished first.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The request's cancel token (clone to cancel from elsewhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

/// An owned design request for [`ServiceQueue::submit`].
///
/// Unlike the borrowing [`ServiceRequest`](crate::ServiceRequest), queue
/// requests own their inputs (`Arc`-shared — intern through
/// [`DesyncEngine::intern_netlist`] to avoid deep clones), because the
/// queue's workers outlive any caller stack frame.
#[derive(Debug, Clone)]
pub struct QueueRequest {
    /// The synchronous netlist to desynchronize.
    pub netlist: Arc<Netlist>,
    /// The cell library to size against.
    pub library: Arc<CellLibrary>,
    /// The flow options.
    pub options: DesyncOptions,
}

impl QueueRequest {
    /// Bundles one owned request.
    pub fn new(netlist: Arc<Netlist>, library: Arc<CellLibrary>, options: DesyncOptions) -> Self {
        Self {
            netlist,
            library,
            options,
        }
    }
}

/// An owned verification sweep point for [`ServiceQueue::submit_sweep`].
#[derive(Debug, Clone)]
pub struct QueueSweepRequest {
    /// The synchronous netlist to desynchronize and verify against.
    pub netlist: Arc<Netlist>,
    /// The cell library to size and simulate against.
    pub library: Arc<CellLibrary>,
    /// The flow options of this point (protocol, margin, …).
    pub options: DesyncOptions,
    /// The input stimulus of the co-simulation.
    pub stimulus: VectorSource,
    /// Number of captures compared per register.
    pub cycles: usize,
}

impl QueueSweepRequest {
    /// Bundles one owned sweep point.
    pub fn new(
        netlist: Arc<Netlist>,
        library: Arc<CellLibrary>,
        options: DesyncOptions,
        stimulus: VectorSource,
        cycles: usize,
    ) -> Self {
        Self {
            netlist,
            library,
            options,
            stimulus,
            cycles,
        }
    }
}

/// An owned randomized-stimulus equivalence campaign point for
/// [`ServiceQueue::submit_campaign`]: one design point verified against up
/// to 64 independent stimulus lanes in a single packed co-simulation.
#[derive(Debug, Clone)]
pub struct QueueCampaignRequest {
    /// The synchronous netlist to desynchronize and verify against.
    pub netlist: Arc<Netlist>,
    /// The cell library to size and simulate against.
    pub library: Arc<CellLibrary>,
    /// The flow options of this point (protocol, margin, …).
    pub options: DesyncOptions,
    /// The interleaved multi-lane stimulus of the packed co-simulation.
    pub stimulus: PackedVectorSource,
    /// Number of captures compared per register, per lane.
    pub cycles: usize,
}

impl QueueCampaignRequest {
    /// Bundles one owned campaign point.
    pub fn new(
        netlist: Arc<Netlist>,
        library: Arc<CellLibrary>,
        options: DesyncOptions,
        stimulus: PackedVectorSource,
        cycles: usize,
    ) -> Self {
        Self {
            netlist,
            library,
            options,
            stimulus,
            cycles,
        }
    }
}

/// The resolution of one campaign point: the per-lane verdicts plus the
/// scalar-equivalent lane events its simulations committed (the word-level
/// committed events are booked into [`ServiceQueue::worker_events`], same
/// as scalar sweep points — one word commit carries all lanes).
#[derive(Debug, Clone)]
pub struct CampaignPointOutcome {
    /// The merged per-lane equivalence report.
    pub report: MultiSeedReport,
    /// Scalar-equivalent lane events committed for this point (cached sync
    /// references count zero, exactly like the scalar sweep accounting).
    pub lane_events: usize,
}

/// Per-request submission knobs.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Relative deadline: the request must *complete* within this budget
    /// (measured from submission) or resolve
    /// [`DesyncError::DeadlineExceeded`] at the next checkpoint.
    pub deadline: Option<Duration>,
    /// An external cancel token (e.g. tied to a client connection). When
    /// `None` the queue creates one; either way the returned
    /// [`TicketHandle`] can cancel.
    pub cancel: Option<CancelToken>,
    /// The scheduling tag: tenant + priority lane. Defaults to the
    /// single-tenant normal lane, reproducing untagged FIFO behaviour.
    pub meta: SubmitMeta,
}

impl SubmitOptions {
    /// Defaults: no deadline, fresh cancel token, default tag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the options with a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the options observing an external cancel token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Returns the options with a full scheduling tag.
    pub fn with_meta(mut self, meta: SubmitMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Returns the options tagged with a tenant.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.meta.tenant = tenant;
        self
    }

    /// Returns the options tagged with a priority lane.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.meta.priority = priority;
        self
    }
}

/// What happens when a submission meets a full queue or an exhausted
/// tenant quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Shed the new request: its ticket resolves
    /// [`DesyncError::QueueFull`] immediately and
    /// [`QueueCounters::shed`] increments (globally and on the shedding
    /// tenant). The service stays responsive; callers retry with backoff.
    #[default]
    RejectNew,
    /// Park the submitting thread until a slot frees — backpressure
    /// propagates to the producer that caused the overload (a tenant at
    /// its quota blocks only its own submitter; other tenants keep
    /// flowing). No deadlock: workers drain independently of submitters
    /// (unless the queue is paused and never resumed, which is a caller
    /// bug), and shutdown wakes every parked submitter, resolving its
    /// ticket [`DesyncError::Cancelled`].
    BlockSubmitter,
}

/// The default anti-starvation aging bound, in dispatch ticks.
pub const DEFAULT_AGING_BOUND: usize = 64;

/// Configuration of a [`ServiceQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Worker threads draining the queue (clamped to at least one).
    pub workers: usize,
    /// Maximum pending (queued, not yet picked up) requests; `None` =
    /// unbounded.
    pub depth: Option<usize>,
    /// Full-queue behaviour (meaningful with a depth bound or a tenant
    /// quota).
    pub admission: AdmissionPolicy,
    /// The deficit-round-robin quantum: how many requests one tenant may
    /// dispatch consecutively within a lane before the turn rotates
    /// (clamped to at least one). Every request costs one deficit unit.
    pub quantum: usize,
    /// Anti-starvation bound, in dispatch ticks: a request that has
    /// waited this many dispatches is promoted past lanes and DRR order.
    /// `None` disables aging (strict lanes can then starve low-priority
    /// work indefinitely). The worst-case wait with aging enabled is
    /// `aging_bound + high_water` ticks.
    pub aging_bound: Option<usize>,
    /// Per-tenant pending-depth quota; `None` = unquotaed. A tenant at
    /// its quota is shed or blocked (per [`AdmissionPolicy`]) without
    /// affecting other tenants' admission.
    pub tenant_quota: Option<usize>,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            depth: None,
            admission: AdmissionPolicy::RejectNew,
            quantum: 1,
            aging_bound: Some(DEFAULT_AGING_BOUND),
            tenant_quota: None,
        }
    }
}

impl QueueConfig {
    /// `workers` threads, unbounded depth, reject-new admission,
    /// quantum 1, default aging bound, no tenant quota.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Returns the config with a depth bound.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = Some(depth);
        self
    }

    /// Returns the config with an admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Returns the config with a DRR quantum.
    pub fn with_quantum(mut self, quantum: usize) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Returns the config with an anti-starvation aging bound.
    pub fn with_aging_bound(mut self, bound: usize) -> Self {
        self.aging_bound = Some(bound);
        self
    }

    /// Returns the config with aging disabled (strict lanes may starve).
    pub fn without_aging(mut self) -> Self {
        self.aging_bound = None;
        self
    }

    /// Returns the config with a per-tenant pending-depth quota.
    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota);
        self
    }
}

/// Per-tenant traffic and scheduling counters, snapshot via
/// [`ServiceQueue::counters`]. Tenants appear in first-submission order,
/// which is deterministic given the submission order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantCounters {
    /// The tenant these counters describe.
    pub tenant: TenantId,
    /// Requests accepted into the queue (sheds not included).
    pub submitted: usize,
    /// Requests popped by the scheduler (includes requests later resolved
    /// cancelled/expired at pickup).
    pub dispatched: usize,
    /// Requests whose execution ran to completion.
    pub completed: usize,
    /// Requests shed at admission (full queue or exhausted quota).
    pub shed: usize,
    /// Requests resolved [`DesyncError::Cancelled`].
    pub cancelled: usize,
    /// Requests resolved [`DesyncError::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Worker panics contained into [`DesyncError::StagePanicked`].
    pub panics_contained: usize,
    /// Requests of this tenant pending at snapshot time.
    pub pending: usize,
    /// Highest pending depth this tenant ever reached.
    pub high_water: usize,
    /// Sum of queue waits over all dispatches, in dispatch ticks.
    pub wait_ticks: u64,
    /// Longest queue wait of any dispatch, in dispatch ticks.
    pub max_wait_ticks: u64,
    /// Residual DRR deficit per lane (index = [`Priority::lane`]) at
    /// snapshot time.
    pub deficit: [u64; Priority::LANES],
}

/// Per-lane traffic counters, snapshot via [`ServiceQueue::counters`].
/// Lanes are reported highest priority first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneCounters {
    /// The lane these counters describe.
    pub priority: Priority,
    /// Requests accepted into this lane.
    pub submitted: usize,
    /// Requests dispatched from this lane.
    pub dispatched: usize,
    /// Dispatches that bypassed lane/DRR order via the aging bound.
    pub aged_promotions: usize,
    /// Longest queue wait of any dispatch from this lane, in ticks.
    pub max_wait_ticks: u64,
}

/// One entry of the dispatch log: which submission the scheduler served
/// at each dispatch tick. Pure function of (submission order, tags,
/// quantum, aging bound) — bit-identical across worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchRecord {
    /// The submission's admission sequence number (0-based, in submission
    /// order, counting only admitted requests).
    pub seq: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The lane it dispatched from.
    pub priority: Priority,
    /// Dispatch ticks spent queued (dispatch tick − enqueue tick).
    pub wait_ticks: u64,
    /// Whether the aging bound promoted this dispatch past the strict
    /// lane/DRR order.
    pub aged: bool,
}

/// A snapshot of a [`ServiceQueue`]'s traffic counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueueCounters {
    /// Requests accepted into the queue (sheds not included).
    pub submitted: usize,
    /// Requests whose execution ran to completion (successfully or with a
    /// typed per-request error other than cancellation/deadline).
    pub completed: usize,
    /// Requests shed by [`AdmissionPolicy::RejectNew`] on a full queue or
    /// an exhausted tenant quota.
    pub shed: usize,
    /// Requests resolved [`DesyncError::Cancelled`] (while queued, at a
    /// stage boundary, or drained on queue drop).
    pub cancelled: usize,
    /// Requests resolved [`DesyncError::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Worker panics contained into [`DesyncError::StagePanicked`]
    /// resolutions (the batch and the workers survived every one).
    pub panics_contained: usize,
    /// Requests pending (queued, not picked up) at snapshot time.
    pub depth: usize,
    /// Highest pending depth ever observed.
    pub high_water: usize,
    /// Per-tenant counters, in first-submission order.
    pub tenants: Vec<TenantCounters>,
    /// Per-lane counters, highest priority first.
    pub lanes: Vec<LaneCounters>,
}

/// One queued unit of work.
///
/// Counter discipline: every path updates the queue counters **before**
/// resolving the ticket, so a caller that observed a resolution (wait,
/// try_wait, poll) also observes the matching counter state — the sync
/// wrappers' reports depend on this.
struct Job {
    /// Executes the request, updates the counters, resolves its ticket.
    /// Receives the shared queue state and the worker index.
    run: JobRun,
    /// Resolves the ticket with an error without executing (pre-pickup
    /// interrupt, drain-cancel, panic containment). Does not touch
    /// counters — callers bump the appropriate one first.
    fail: Box<dyn FnOnce(DesyncError) + Send>,
    /// Checked at pickup, before any engine work.
    interrupt: Interrupt,
    /// The submitting tenant (per-tenant counter attribution).
    tenant: TenantId,
    /// The lane it was submitted to.
    priority: Priority,
}

/// A [`Job`]'s executable body: `(shared, worker_index)`.
type JobRun = Box<dyn FnOnce(&QueueShared, usize) + Send>;

/// A job waiting in one (tenant, lane) FIFO, stamped with its admission
/// sequence number and the logical enqueue tick.
struct PendingJob {
    job: Job,
    seq: u64,
    enqueue_tick: u64,
}

/// Per-tenant scheduler state: one FIFO and one DRR deficit per lane,
/// plus the tenant's counters.
struct TenantSched {
    id: TenantId,
    queues: [VecDeque<PendingJob>; Priority::LANES],
    deficit: [u64; Priority::LANES],
    pending: usize,
    high_water: usize,
    submitted: usize,
    dispatched: usize,
    completed: usize,
    shed: usize,
    cancelled: usize,
    deadline_exceeded: usize,
    panics_contained: usize,
    wait_ticks: u64,
    max_wait_ticks: u64,
}

impl TenantSched {
    fn new(id: TenantId) -> Self {
        Self {
            id,
            queues: std::array::from_fn(|_| VecDeque::new()),
            deficit: [0; Priority::LANES],
            pending: 0,
            high_water: 0,
            submitted: 0,
            dispatched: 0,
            completed: 0,
            shed: 0,
            cancelled: 0,
            deadline_exceeded: 0,
            panics_contained: 0,
            wait_ticks: 0,
            max_wait_ticks: 0,
        }
    }

    fn counters(&self) -> TenantCounters {
        TenantCounters {
            tenant: self.id,
            submitted: self.submitted,
            dispatched: self.dispatched,
            completed: self.completed,
            shed: self.shed,
            cancelled: self.cancelled,
            deadline_exceeded: self.deadline_exceeded,
            panics_contained: self.panics_contained,
            pending: self.pending,
            high_water: self.high_water,
            wait_ticks: self.wait_ticks,
            max_wait_ticks: self.max_wait_ticks,
            deficit: self.deficit,
        }
    }
}

/// Per-lane scheduler state: the DRR ring of tenants with pending work in
/// this lane (invariant: a tenant index is in `active` iff its queue for
/// this lane is non-empty), plus the lane's counters.
struct LaneSched {
    active: VecDeque<usize>,
    submitted: usize,
    dispatched: usize,
    aged_promotions: usize,
    max_wait_ticks: u64,
}

impl LaneSched {
    fn new() -> Self {
        Self {
            active: VecDeque::new(),
            submitted: 0,
            dispatched: 0,
            aged_promotions: 0,
            max_wait_ticks: 0,
        }
    }
}

/// The deterministic dispatcher: strict priority lanes over per-tenant
/// deficit-round-robin, with logical-clock aging. Lives entirely inside
/// the queue's state mutex; every decision is a pure function of the
/// submission order and tags, never of wall-clock time or worker
/// identity.
struct Scheduler {
    quantum: u64,
    aging_bound: Option<u64>,
    tenants: Vec<TenantSched>,
    index: HashMap<u32, usize>,
    lanes: [LaneSched; Priority::LANES],
    pending_total: usize,
    next_seq: u64,
    tick: u64,
}

impl Scheduler {
    fn new(quantum: usize, aging_bound: Option<usize>) -> Self {
        Self {
            quantum: quantum.max(1) as u64,
            aging_bound: aging_bound.map(|b| b as u64),
            tenants: Vec::new(),
            index: HashMap::new(),
            lanes: std::array::from_fn(|_| LaneSched::new()),
            pending_total: 0,
            next_seq: 0,
            tick: 0,
        }
    }

    /// The stable index of `id`, registering the tenant on first sight
    /// (indices are first-submission order — deterministic given the
    /// submission order).
    fn tenant_index(&mut self, id: TenantId) -> usize {
        if let Some(&i) = self.index.get(&id.id()) {
            return i;
        }
        self.tenants.push(TenantSched::new(id));
        self.index.insert(id.id(), self.tenants.len() - 1);
        self.tenants.len() - 1
    }

    fn pending(&self) -> usize {
        self.pending_total
    }

    /// Admits `job` into its (tenant, lane) FIFO.
    fn enqueue(&mut self, job: Job) {
        let lane = job.priority.lane();
        let ti = self.tenant_index(job.tenant);
        let seq = self.next_seq;
        self.next_seq += 1;
        let enqueue_tick = self.tick;
        let tenant = &mut self.tenants[ti];
        if tenant.queues[lane].is_empty() {
            self.lanes[lane].active.push_back(ti);
        }
        tenant.queues[lane].push_back(PendingJob {
            job,
            seq,
            enqueue_tick,
        });
        tenant.pending += 1;
        tenant.high_water = tenant.high_water.max(tenant.pending);
        tenant.submitted += 1;
        self.lanes[lane].submitted += 1;
        self.pending_total += 1;
    }

    /// The (lane, tenant index, seq) strict-priority DRR would serve next.
    fn peek_normal(&self) -> Option<(usize, usize, u64)> {
        for lane in (0..Priority::LANES).rev() {
            if let Some(&ti) = self.lanes[lane].active.front() {
                let seq = self.tenants[ti].queues[lane]
                    .front()
                    .expect("active ring invariant: non-empty lane queue")
                    .seq;
                return Some((lane, ti, seq));
            }
        }
        None
    }

    /// The globally oldest pending job: (lane, tenant index, seq,
    /// enqueue tick). Oldest-by-seq also means oldest-by-enqueue-tick
    /// (ticks are non-decreasing in seq), which the aging bound relies on.
    fn peek_oldest(&self) -> Option<(usize, usize, u64, u64)> {
        let mut best: Option<(usize, usize, u64, u64)> = None;
        for (ti, tenant) in self.tenants.iter().enumerate() {
            for lane in 0..Priority::LANES {
                if let Some(front) = tenant.queues[lane].front() {
                    if best.is_none_or(|(_, _, seq, _)| front.seq < seq) {
                        best = Some((lane, ti, front.seq, front.enqueue_tick));
                    }
                }
            }
        }
        best
    }

    /// Pops the next scheduled job, advancing the dispatch clock. The
    /// decision order: aging promotion of the globally oldest request if
    /// it has waited `aging_bound` ticks and is not the normal candidate
    /// anyway; otherwise the highest non-empty lane's DRR front.
    fn pop(&mut self) -> Option<(Job, DispatchRecord)> {
        let (mut lane, mut ti, normal_seq) = self.peek_normal()?;
        let mut aged = false;
        if let Some(bound) = self.aging_bound {
            if let Some((olane, oti, oseq, otick)) = self.peek_oldest() {
                if oseq != normal_seq && self.tick.saturating_sub(otick) >= bound {
                    aged = true;
                    lane = olane;
                    ti = oti;
                }
            }
        }

        let pending = if aged {
            // Out-of-band promotion: serve the queue front directly and
            // repair the active ring if the queue drained.
            let tenant = &mut self.tenants[ti];
            let pending = tenant.queues[lane]
                .pop_front()
                .expect("aged candidate has a queue front");
            if tenant.queues[lane].is_empty() {
                tenant.deficit[lane] = 0;
                if let Some(pos) = self.lanes[lane].active.iter().position(|&x| x == ti) {
                    self.lanes[lane].active.remove(pos);
                }
            }
            self.lanes[lane].aged_promotions += 1;
            pending
        } else {
            let tenant = &mut self.tenants[ti];
            if tenant.deficit[lane] == 0 {
                tenant.deficit[lane] = self.quantum;
            }
            let pending = tenant.queues[lane]
                .pop_front()
                .expect("active ring invariant: non-empty lane queue");
            tenant.deficit[lane] -= 1;
            if tenant.queues[lane].is_empty() {
                tenant.deficit[lane] = 0;
                self.lanes[lane].active.pop_front();
            } else if tenant.deficit[lane] == 0 {
                // Quantum exhausted: rotate the tenant to the ring's back.
                let front = self.lanes[lane]
                    .active
                    .pop_front()
                    .expect("active ring invariant: ring front exists");
                self.lanes[lane].active.push_back(front);
            }
            pending
        };

        let wait = self.tick - pending.enqueue_tick;
        let tenant = &mut self.tenants[ti];
        tenant.pending -= 1;
        tenant.dispatched += 1;
        tenant.wait_ticks += wait;
        tenant.max_wait_ticks = tenant.max_wait_ticks.max(wait);
        self.lanes[lane].dispatched += 1;
        self.lanes[lane].max_wait_ticks = self.lanes[lane].max_wait_ticks.max(wait);
        self.pending_total -= 1;
        self.tick += 1;
        let record = DispatchRecord {
            seq: pending.seq,
            tenant: tenant.id,
            priority: pending.job.priority,
            wait_ticks: wait,
            aged,
        };
        Some((pending.job, record))
    }

    /// Removes every pending job, in submission order, for drain-cancel
    /// at shutdown. Resets the rings and deficits; counters survive.
    fn drain(&mut self) -> Vec<Job> {
        let mut all: Vec<PendingJob> = Vec::new();
        for tenant in &mut self.tenants {
            for lane in 0..Priority::LANES {
                all.extend(tenant.queues[lane].drain(..));
            }
            tenant.deficit = [0; Priority::LANES];
            tenant.pending = 0;
        }
        for lane in &mut self.lanes {
            lane.active.clear();
        }
        self.pending_total = 0;
        all.sort_by_key(|p| p.seq);
        all.into_iter().map(|p| p.job).collect()
    }

    fn tenant_counters(&self) -> Vec<TenantCounters> {
        self.tenants.iter().map(TenantSched::counters).collect()
    }

    fn lane_counters(&self) -> Vec<LaneCounters> {
        (0..Priority::LANES)
            .rev()
            .map(|lane| LaneCounters {
                priority: Priority::from_lane(lane),
                submitted: self.lanes[lane].submitted,
                dispatched: self.lanes[lane].dispatched,
                aged_promotions: self.lanes[lane].aged_promotions,
                max_wait_ticks: self.lanes[lane].max_wait_ticks,
            })
            .collect()
    }
}

/// Everything the workers and the handle share.
struct QueueShared {
    engine: Arc<DesyncEngine>,
    state: Mutex<QueueState>,
    /// Signals workers: work available, unpaused, or shutdown.
    jobs_ready: Condvar,
    /// Signals blocked submitters: a slot freed (or shutdown began).
    space_ready: Condvar,
    depth: Option<usize>,
    admission: AdmissionPolicy,
    tenant_quota: Option<usize>,
    submitted: AtomicUsize,
    completed: AtomicUsize,
    shed: AtomicUsize,
    cancelled: AtomicUsize,
    deadline_exceeded: AtomicUsize,
    panics_contained: AtomicUsize,
    /// Simulation events committed per worker (sweep jobs only).
    worker_events: Vec<AtomicUsize>,
}

struct QueueState {
    sched: Scheduler,
    paused: bool,
    shutdown: bool,
    high_water: usize,
    dispatch_log: Vec<DispatchRecord>,
}

impl QueueShared {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Bumps one of `tenant`'s counters under the state lock. The tenant
    /// is always registered (it was registered at admission), but a
    /// missing entry is tolerated rather than panicking in a worker.
    fn bump_tenant(&self, tenant: TenantId, bump: impl FnOnce(&mut TenantSched)) {
        let mut state = self.lock_state();
        if let Some(&i) = state.sched.index.get(&tenant.id()) {
            bump(&mut state.sched.tenants[i]);
        }
    }
}

/// The bounded asynchronous submission queue over a shared
/// [`DesyncEngine`]. See the [module documentation](self) for the request
/// lifecycle and determinism notes.
#[derive(Debug)]
pub struct ServiceQueue {
    shared: Arc<QueueShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for QueueShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueShared")
            .field("depth", &self.depth)
            .field("admission", &self.admission)
            .field("tenant_quota", &self.tenant_quota)
            .finish_non_exhaustive()
    }
}

impl ServiceQueue {
    /// Spawns a queue with `config` over `engine`.
    pub fn new(engine: Arc<DesyncEngine>, config: QueueConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(QueueShared {
            engine,
            state: Mutex::new(QueueState {
                sched: Scheduler::new(config.quantum, config.aging_bound),
                paused: false,
                shutdown: false,
                high_water: 0,
                dispatch_log: Vec::new(),
            }),
            jobs_ready: Condvar::new(),
            space_ready: Condvar::new(),
            depth: config.depth,
            admission: config.admission,
            tenant_quota: config.tenant_quota,
            submitted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            cancelled: AtomicUsize::new(0),
            deadline_exceeded: AtomicUsize::new(0),
            panics_contained: AtomicUsize::new(0),
            worker_events: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
        });
        let workers = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("desync-request-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning queue worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The engine the workers execute against.
    pub fn engine(&self) -> &Arc<DesyncEngine> {
        &self.shared.engine
    }

    /// Submits a design request; the returned ticket resolves with its
    /// [`DesyncDesign`] or a typed error.
    pub fn submit(
        &self,
        request: QueueRequest,
        options: SubmitOptions,
    ) -> TicketHandle<DesyncDesign> {
        let engine = Arc::clone(&self.shared.engine);
        let tag = request.netlist.structural_hash();
        self.submit_job(options, move |interrupt| {
            let result = failpoints::with_tag(tag, || run_design(&engine, &request, interrupt));
            (result, 0)
        })
    }

    /// Submits a verification sweep point; the returned ticket resolves
    /// with its [`EquivalenceReport`] or a typed error.
    pub fn submit_sweep(
        &self,
        request: QueueSweepRequest,
        options: SubmitOptions,
    ) -> TicketHandle<EquivalenceReport> {
        let engine = Arc::clone(&self.shared.engine);
        let tag = request.netlist.structural_hash();
        self.submit_job(options, move |interrupt| {
            match failpoints::with_tag(tag, || run_sweep_point(&engine, &request, interrupt)) {
                Ok((report, simulated)) => (Ok(report), simulated),
                Err(error) => (Err(error), 0),
            }
        })
    }

    /// Submits a packed equivalence campaign point; the returned ticket
    /// resolves with its [`CampaignPointOutcome`] or a typed error. The
    /// `sim::commit` failpoint fires once per packed commit — per *point*,
    /// not per lane — so tag-targeted fault plans hit a campaign point
    /// exactly as often as the equivalent scalar sweep point.
    pub fn submit_campaign(
        &self,
        request: QueueCampaignRequest,
        options: SubmitOptions,
    ) -> TicketHandle<CampaignPointOutcome> {
        let engine = Arc::clone(&self.shared.engine);
        let tag = request.netlist.structural_hash();
        self.submit_job(options, move |interrupt| {
            match failpoints::with_tag(tag, || run_campaign_point(&engine, &request, interrupt)) {
                Ok((outcome, simulated)) => (Ok(outcome), simulated),
                Err(error) => (Err(error), 0),
            }
        })
    }

    /// The shared submission path: admission control (global depth +
    /// tenant quota + shutdown), ticket creation, enqueue into the
    /// scheduler. `execute` returns the request's result plus the
    /// simulation events it committed (zero for design requests).
    fn submit_job<T: Send + 'static>(
        &self,
        options: SubmitOptions,
        execute: impl FnOnce(&Interrupt) -> (Result<T, DesyncError>, usize) + Send + 'static,
    ) -> TicketHandle<T> {
        let meta = options.meta;
        let cancel = options.cancel.unwrap_or_default();
        let deadline = options.deadline.map(|d| Instant::now() + d);
        let interrupt = Interrupt::new(Some(cancel.clone()), deadline);
        let cell = Arc::new(TicketCell::new());
        let handle = TicketHandle {
            cell: Arc::clone(&cell),
            cancel,
        };

        let mut state = self.shared.lock_state();
        // Register the tenant first so shed/cancel paths have a counter
        // row even when the request never enqueues.
        let ti = state.sched.tenant_index(meta.tenant);
        loop {
            if state.shutdown {
                // The queue is shutting down: nothing will ever drain this
                // request, so it must resolve now — never enqueue, never
                // keep a submitter parked.
                state.sched.tenants[ti].cancelled += 1;
                drop(state);
                self.shared.cancelled.fetch_add(1, Ordering::SeqCst);
                cell.resolve(Err(DesyncError::Cancelled));
                return handle;
            }
            let global_full = self
                .shared
                .depth
                .is_some_and(|bound| state.sched.pending() >= bound);
            let tenant_full = self
                .shared
                .tenant_quota
                .is_some_and(|quota| state.sched.tenants[ti].pending >= quota);
            if !global_full && !tenant_full {
                break;
            }
            match self.shared.admission {
                AdmissionPolicy::RejectNew => {
                    let error = DesyncError::QueueFull {
                        depth: state.sched.pending(),
                        capacity: self.shared.depth,
                        tenant: meta.tenant,
                        tenant_depth: state.sched.tenants[ti].pending,
                        tenant_quota: self.shared.tenant_quota,
                    };
                    state.sched.tenants[ti].shed += 1;
                    drop(state);
                    self.shared.shed.fetch_add(1, Ordering::SeqCst);
                    cell.resolve(Err(error));
                    return handle;
                }
                AdmissionPolicy::BlockSubmitter => {
                    state = self
                        .shared
                        .space_ready
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }

        let run_cell = Arc::clone(&cell);
        let run_interrupt = interrupt.clone();
        let fail_cell = Arc::clone(&cell);
        let tenant = meta.tenant;
        state.sched.enqueue(Job {
            run: Box::new(move |shared: &QueueShared, worker: usize| {
                let (result, simulated) = execute(&run_interrupt);
                // Counters strictly before resolution (see `Job` docs).
                match &result {
                    Err(DesyncError::Cancelled) => {
                        shared.bump_tenant(tenant, |t| t.cancelled += 1);
                        shared.cancelled.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(DesyncError::DeadlineExceeded) => {
                        shared.bump_tenant(tenant, |t| t.deadline_exceeded += 1);
                        shared.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {
                        shared.bump_tenant(tenant, |t| t.completed += 1);
                        shared.completed.fetch_add(1, Ordering::SeqCst);
                        if simulated > 0 {
                            shared.worker_events[worker].fetch_add(simulated, Ordering::SeqCst);
                        }
                    }
                }
                run_cell.resolve(result);
            }),
            fail: Box::new(move |error| fail_cell.resolve(Err(error))),
            interrupt,
            tenant: meta.tenant,
            priority: meta.priority,
        });
        state.high_water = state.high_water.max(state.sched.pending());
        self.shared.submitted.fetch_add(1, Ordering::SeqCst);
        drop(state);
        self.shared.jobs_ready.notify_one();
        handle
    }

    /// Pauses pickup: workers finish their current request and park;
    /// submissions keep queueing. With [`ServiceQueue::resume`] this lets
    /// a caller stage a whole batch before execution starts — the sync
    /// wrappers use it to make `high_water` (and shed patterns under a
    /// depth bound or tenant quota) deterministic, and it pins the
    /// dispatch order: with the whole batch staged, the scheduler's
    /// decisions depend only on submission order and tags.
    pub fn pause(&self) {
        self.shared.lock_state().paused = true;
    }

    /// Resumes pickup after [`ServiceQueue::pause`].
    pub fn resume(&self) {
        self.shared.lock_state().paused = false;
        self.shared.jobs_ready.notify_all();
    }

    /// A snapshot of the queue's traffic counters, including the
    /// per-tenant and per-lane blocks.
    pub fn counters(&self) -> QueueCounters {
        let (depth, high_water, tenants, lanes) = {
            let state = self.shared.lock_state();
            (
                state.sched.pending(),
                state.high_water,
                state.sched.tenant_counters(),
                state.sched.lane_counters(),
            )
        };
        QueueCounters {
            submitted: self.shared.submitted.load(Ordering::SeqCst),
            completed: self.shared.completed.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
            cancelled: self.shared.cancelled.load(Ordering::SeqCst),
            deadline_exceeded: self.shared.deadline_exceeded.load(Ordering::SeqCst),
            panics_contained: self.shared.panics_contained.load(Ordering::SeqCst),
            depth,
            high_water,
            tenants,
            lanes,
        }
    }

    /// The dispatch log so far: one [`DispatchRecord`] per scheduler pop,
    /// in dispatch order. Deterministic across worker counts for a staged
    /// batch. The log grows for the queue's lifetime (the sync wrappers
    /// use one short-lived queue per batch, so it stays small; a
    /// long-lived server queue may prefer [`ServiceQueue::counters`]).
    pub fn dispatch_log(&self) -> Vec<DispatchRecord> {
        self.shared.lock_state().dispatch_log.clone()
    }

    /// Simulation events committed per worker (sweep requests only),
    /// indexed by worker. The total is scheduling-independent; the split
    /// shows the load balance.
    pub fn worker_events(&self) -> Vec<usize> {
        self.shared
            .worker_events
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .collect()
    }

    /// Shuts the queue down immediately: every queued-but-unstarted
    /// request resolves [`DesyncError::Cancelled`] (in submission order,
    /// so no waiter blocked in [`TicketHandle::wait`] /
    /// [`TicketHandle::wait_timeout`] hangs), submitters parked on
    /// [`AdmissionPolicy::BlockSubmitter`] backpressure wake and get their
    /// tickets resolved `Cancelled` too, and further submissions resolve
    /// `Cancelled` at admission. Requests already picked up by a worker
    /// run to completion. Idempotent; dropping the queue calls it and then
    /// joins the workers.
    pub fn shutdown(&self) {
        let drained: Vec<Job> = {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
            state.paused = false;
            let drained = state.sched.drain();
            for job in &drained {
                if let Some(&i) = state.sched.index.get(&job.tenant.id()) {
                    state.sched.tenants[i].cancelled += 1;
                }
            }
            drained
        };
        // Resolve every still-pending ticket Cancelled, in submission
        // order, so no waiter hangs; then wake parked workers and
        // submitters (a submitter's admission loop observes shutdown and
        // resolves its ticket Cancelled too).
        for job in drained {
            self.shared.cancelled.fetch_add(1, Ordering::SeqCst);
            (job.fail)(DesyncError::Cancelled);
        }
        self.shared.jobs_ready.notify_all();
        self.shared.space_ready.notify_all();
    }
}

impl Drop for ServiceQueue {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Executes one design request against the shared engine: lint admission
/// gate, then the full construction pipeline. Mirrors the synchronous
/// service exactly (the wrappers' bit-identity to PR-7 rests on this).
fn run_design(
    engine: &DesyncEngine,
    request: &QueueRequest,
    interrupt: &Interrupt,
) -> Result<DesyncDesign, DesyncError> {
    let mut flow = engine.flow(&request.netlist, &request.library, request.options)?;
    flow.set_interrupt(interrupt.clone());
    // Admission control: the O(V+E) lint pre-flight runs (or is served
    // from the store) before any stage computes.
    let lint = flow.lint()?;
    if !lint.is_clean() {
        return Err(DesyncError::LintRejected(lint));
    }
    flow.design()
}

/// Executes one verification sweep point, returning the report plus the
/// events its simulations actually committed (cached sync references count
/// zero — nothing was simulated).
fn run_sweep_point(
    engine: &DesyncEngine,
    request: &QueueSweepRequest,
    interrupt: &Interrupt,
) -> Result<(EquivalenceReport, usize), DesyncError> {
    let mut flow = engine.flow(&request.netlist, &request.library, request.options)?;
    flow.set_interrupt(interrupt.clone());
    let lint = flow.lint()?;
    if !lint.is_clean() {
        return Err(DesyncError::LintRejected(lint));
    }
    flow.set_verification(request.stimulus.clone(), request.cycles);
    let report = flow.verified()?.clone();
    let mut simulated = report.async_run.committed_events;
    if flow.sync_run_cache_hits() == 0 {
        simulated += report.sync_run.committed_events;
    }
    Ok((report, simulated))
}

/// Executes one packed campaign point, returning the outcome plus the
/// word-level events its simulations committed (the packed kernel commits
/// one word event per net change regardless of lane count; cached packed
/// sync references count zero, mirroring the scalar discipline).
fn run_campaign_point(
    engine: &DesyncEngine,
    request: &QueueCampaignRequest,
    interrupt: &Interrupt,
) -> Result<(CampaignPointOutcome, usize), DesyncError> {
    let mut flow = engine.flow(&request.netlist, &request.library, request.options)?;
    flow.set_interrupt(interrupt.clone());
    let lint = flow.lint()?;
    if !lint.is_clean() {
        return Err(DesyncError::LintRejected(lint));
    }
    let report = flow.verify_packed(&request.stimulus, request.cycles)?;
    let sync_cached = flow.sync_run_cache_hits() > 0;
    let mut word_events = report.async_word_events;
    let mut lane_events = report.async_lane_events;
    if !sync_cached {
        word_events += report.sync_word_events;
        lane_events += report.sync_lane_events;
    }
    Ok((
        CampaignPointOutcome {
            report,
            lane_events,
        },
        word_events,
    ))
}

fn worker_loop(shared: &QueueShared, index: usize) {
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if !state.paused {
                    if let Some((job, record)) = state.sched.pop() {
                        state.dispatch_log.push(record);
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                } else if state.shutdown {
                    return;
                }
                state = shared
                    .jobs_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // A slot freed: wake one blocked submitter.
        shared.space_ready.notify_one();

        // Pre-start checkpoint: a request cancelled or expired while
        // queued never touches the engine. Counters before resolution.
        let tenant = job.tenant;
        if let Err(error) = job.interrupt.check() {
            match &error {
                DesyncError::Cancelled => {
                    shared.bump_tenant(tenant, |t| t.cancelled += 1);
                    shared.cancelled.fetch_add(1, Ordering::SeqCst)
                }
                _ => {
                    shared.bump_tenant(tenant, |t| t.deadline_exceeded += 1);
                    shared.deadline_exceeded.fetch_add(1, Ordering::SeqCst)
                }
            };
            (job.fail)(error);
            continue;
        }

        // Containment: the request executes under catch_unwind with a
        // clean stage trace; a panic resolves this ticket StagePanicked
        // (naming the stage) and the worker survives. The job updates the
        // counters and resolves its own ticket on the non-panic paths.
        stage_trace::clear();
        let run = job.run;
        if let Err(payload) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || run(shared, index)))
        {
            shared.bump_tenant(tenant, |t| t.panics_contained += 1);
            shared.panics_contained.fetch_add(1, Ordering::SeqCst);
            let stage = stage_trace::take().unwrap_or("request");
            (job.fail)(DesyncError::StagePanicked {
                stage,
                message: panic_message(payload.as_ref()),
            });
        }
    }
}
