//! The asynchronous submission front-end: bounded queue, tickets,
//! cancellation, deadlines and per-request fault containment.
//!
//! [`ServiceQueue`] is the execution core that
//! [`DesyncService`](crate::DesyncService) layers its synchronous
//! `run_batch`/`run_sweep` wrappers over. Callers **submit** work — a
//! design request ([`QueueRequest`]) or a verification sweep point
//! ([`QueueSweepRequest`]) — and immediately receive a [`TicketHandle`]
//! they can poll, block on, or abandon; a fixed set of worker threads
//! drains the queue in FIFO order and resolves each ticket with a
//! `Result`.
//!
//! # Lifecycle of a request
//!
//! 1. **Admission.** If the queue has a depth bound and is full, the
//!    configured [`AdmissionPolicy`] decides: `RejectNew` resolves the
//!    ticket right away with [`DesyncError::QueueFull`] (the request is
//!    *shed*, counted in [`QueueCounters::shed`]); `BlockSubmitter` parks
//!    the submitting thread until a slot frees.
//! 2. **Pickup.** A worker pops the request, first checking its
//!    [`CancelToken`] and deadline — a request cancelled while queued is
//!    resolved [`DesyncError::Cancelled`] without touching the engine, an
//!    expired one [`DesyncError::DeadlineExceeded`].
//! 3. **Execution.** The worker runs the flow attached to the shared
//!    engine. The request's [`Interrupt`] travels inside the flow and is
//!    re-checked at **every stage boundary** (cooperative cancellation:
//!    a cancelled request stops at the next stage edge, never mid-stage).
//! 4. **Containment.** The whole execution runs under `catch_unwind`: a
//!    panicking stage resolves *that request's* ticket with
//!    [`DesyncError::StagePanicked`] (carrying the stage name from the
//!    sticky [`stage_trace`]) and the worker survives. The store's
//!    in-flight registry is unwound by its own drop guard, so followers of
//!    a failed leader retry instead of hanging — no wedged keys.
//! 5. **Resolution.** The ticket resolves exactly once (first write wins);
//!    waiters wake via condvar.
//!
//! Dropping the queue cancels every still-pending request (their tickets
//! resolve [`DesyncError::Cancelled`]), lets in-progress work finish, and
//! joins the workers.
//!
//! # Determinism
//!
//! The queue adds *scheduling*, never *content*: results are pure
//! functions of the request, so any interleaving of workers produces
//! bit-identical tickets. The sync wrappers additionally need
//! deterministic *counters*; they use [`ServiceQueue::pause`] /
//! [`ServiceQueue::resume`] to submit a whole batch before execution
//! starts, which pins [`QueueCounters::high_water`] (and, under a depth
//! bound, the shed pattern) independent of worker timing.

use crate::engine::DesyncEngine;
use crate::error::DesyncError;
use crate::failpoints;
use crate::flow::DesyncDesign;
use crate::options::DesyncOptions;
use crate::verify::{EquivalenceReport, MultiSeedReport};
use desync_netlist::{CellLibrary, Netlist};
use desync_sim::{PackedVectorSource, VectorSource};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Records which pipeline stage the current thread is executing, so panic
/// containment can name the stage that blew up.
///
/// The marker is **sticky**: a stage sets it on entry and nothing clears
/// it on exit — deliberately, because a panic unwinds through `Drop` impls
/// (which would wipe a guard-based marker before `catch_unwind` gets to
/// read it). The queue worker clears the marker before each request and
/// takes it after a catch, so the last stage entered before the panic is
/// exactly what the error reports.
pub(crate) mod stage_trace {
    use std::cell::Cell;

    thread_local! {
        static CURRENT: Cell<Option<&'static str>> = const { Cell::new(None) };
    }

    /// Marks `stage` as executing on this thread (sticky; see module doc).
    pub(crate) fn enter(stage: &'static str) {
        CURRENT.with(|c| c.set(Some(stage)));
    }

    /// Clears the marker (queue workers call this before each request).
    pub(crate) fn clear() {
        CURRENT.with(|c| c.set(None));
    }

    /// Takes the last stage entered on this thread, clearing the marker.
    pub(crate) fn take() -> Option<&'static str> {
        CURRENT.with(|c| c.take())
    }
}

/// Extracts a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A shared flag requesting cooperative cancellation of one request.
///
/// Cloning shares the flag. Cancellation is *cooperative*: the request
/// observes the token at pickup and at every [`DesyncFlow`](crate::DesyncFlow)
/// stage boundary, then resolves its ticket [`DesyncError::Cancelled`] —
/// an already-running stage finishes (its artifact may still be published
/// to the store, where it benefits other requests).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }
}

/// The interrupt condition a request executes under: its cancel token plus
/// an optional absolute deadline. Checked at request pickup and at every
/// stage boundary of [`DesyncFlow`](crate::DesyncFlow).
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
}

impl Interrupt {
    /// An interrupt that never fires (detached flows default to this).
    pub fn none() -> Self {
        Self::default()
    }

    /// An interrupt observing `cancel` and, optionally, an absolute
    /// `deadline`.
    pub fn new(cancel: Option<CancelToken>, deadline: Option<Instant>) -> Self {
        Self { cancel, deadline }
    }

    /// Whether either condition could ever fire (used to skip per-stage
    /// checks entirely for plain synchronous flows).
    pub fn is_armed(&self) -> bool {
        self.cancel.is_some() || self.deadline.is_some()
    }

    /// Checks both conditions: cancellation wins over the deadline when
    /// both have fired.
    ///
    /// # Errors
    ///
    /// [`DesyncError::Cancelled`] / [`DesyncError::DeadlineExceeded`].
    pub fn check(&self) -> Result<(), DesyncError> {
        if let Some(cancel) = &self.cancel {
            if cancel.is_cancelled() {
                return Err(DesyncError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(DesyncError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// The write-once result slot behind a [`TicketHandle`].
#[derive(Debug)]
struct TicketCell<T> {
    slot: Mutex<Option<Result<T, DesyncError>>>,
    ready: Condvar,
}

impl<T> TicketCell<T> {
    fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Resolves the ticket; the first write wins (a request cancelled in
    /// the same instant its worker finishes keeps exactly one outcome).
    fn resolve(&self, result: Result<T, DesyncError>) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
            self.ready.notify_all();
        }
    }
}

/// A per-request completion handle returned by
/// [`ServiceQueue::submit`] / [`ServiceQueue::submit_sweep`].
///
/// The handle is also the request's cancellation surface:
/// [`TicketHandle::cancel`] fires the request's [`CancelToken`].
#[derive(Debug)]
pub struct TicketHandle<T> {
    cell: Arc<TicketCell<T>>,
    cancel: CancelToken,
}

impl<T: Clone> TicketHandle<T> {
    /// Non-blocking completion check: `Some(result)` once resolved (the
    /// result is cloned out; [`TicketHandle::wait`] moves it instead).
    pub fn try_wait(&self) -> Option<Result<T, DesyncError>> {
        self.cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Blocks until resolution or `timeout`, whichever first.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, DesyncError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if slot.is_some() {
                return slot.clone();
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (guard, _timed_out) = self
                .cell
                .ready
                .wait_timeout(slot, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            slot = guard;
        }
    }
}

impl<T> TicketHandle<T> {
    /// Whether the request has resolved (without consuming the result).
    pub fn poll(&self) -> bool {
        self.cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Blocks until the request resolves and moves the result out.
    ///
    /// Resolution is guaranteed as long as the owning [`ServiceQueue`] is
    /// eventually dropped: every submitted request is executed, shed,
    /// or drain-cancelled.
    pub fn wait(self) -> Result<T, DesyncError> {
        let mut slot = self
            .cell
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self
                .cell
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Requests cooperative cancellation of this request (see
    /// [`CancelToken`]). The ticket still resolves — with
    /// [`DesyncError::Cancelled`] if cancellation won, or with the result
    /// if the computation finished first.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The request's cancel token (clone to cancel from elsewhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }
}

/// An owned design request for [`ServiceQueue::submit`].
///
/// Unlike the borrowing [`ServiceRequest`](crate::ServiceRequest), queue
/// requests own their inputs (`Arc`-shared — intern through
/// [`DesyncEngine::intern_netlist`] to avoid deep clones), because the
/// queue's workers outlive any caller stack frame.
#[derive(Debug, Clone)]
pub struct QueueRequest {
    /// The synchronous netlist to desynchronize.
    pub netlist: Arc<Netlist>,
    /// The cell library to size against.
    pub library: Arc<CellLibrary>,
    /// The flow options.
    pub options: DesyncOptions,
}

impl QueueRequest {
    /// Bundles one owned request.
    pub fn new(netlist: Arc<Netlist>, library: Arc<CellLibrary>, options: DesyncOptions) -> Self {
        Self {
            netlist,
            library,
            options,
        }
    }
}

/// An owned verification sweep point for [`ServiceQueue::submit_sweep`].
#[derive(Debug, Clone)]
pub struct QueueSweepRequest {
    /// The synchronous netlist to desynchronize and verify against.
    pub netlist: Arc<Netlist>,
    /// The cell library to size and simulate against.
    pub library: Arc<CellLibrary>,
    /// The flow options of this point (protocol, margin, …).
    pub options: DesyncOptions,
    /// The input stimulus of the co-simulation.
    pub stimulus: VectorSource,
    /// Number of captures compared per register.
    pub cycles: usize,
}

impl QueueSweepRequest {
    /// Bundles one owned sweep point.
    pub fn new(
        netlist: Arc<Netlist>,
        library: Arc<CellLibrary>,
        options: DesyncOptions,
        stimulus: VectorSource,
        cycles: usize,
    ) -> Self {
        Self {
            netlist,
            library,
            options,
            stimulus,
            cycles,
        }
    }
}

/// An owned randomized-stimulus equivalence campaign point for
/// [`ServiceQueue::submit_campaign`]: one design point verified against up
/// to 64 independent stimulus lanes in a single packed co-simulation.
#[derive(Debug, Clone)]
pub struct QueueCampaignRequest {
    /// The synchronous netlist to desynchronize and verify against.
    pub netlist: Arc<Netlist>,
    /// The cell library to size and simulate against.
    pub library: Arc<CellLibrary>,
    /// The flow options of this point (protocol, margin, …).
    pub options: DesyncOptions,
    /// The interleaved multi-lane stimulus of the packed co-simulation.
    pub stimulus: PackedVectorSource,
    /// Number of captures compared per register, per lane.
    pub cycles: usize,
}

impl QueueCampaignRequest {
    /// Bundles one owned campaign point.
    pub fn new(
        netlist: Arc<Netlist>,
        library: Arc<CellLibrary>,
        options: DesyncOptions,
        stimulus: PackedVectorSource,
        cycles: usize,
    ) -> Self {
        Self {
            netlist,
            library,
            options,
            stimulus,
            cycles,
        }
    }
}

/// The resolution of one campaign point: the per-lane verdicts plus the
/// scalar-equivalent lane events its simulations committed (the word-level
/// committed events are booked into [`ServiceQueue::worker_events`], same
/// as scalar sweep points — one word commit carries all lanes).
#[derive(Debug, Clone)]
pub struct CampaignPointOutcome {
    /// The merged per-lane equivalence report.
    pub report: MultiSeedReport,
    /// Scalar-equivalent lane events committed for this point (cached sync
    /// references count zero, exactly like the scalar sweep accounting).
    pub lane_events: usize,
}

/// Per-request submission knobs.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Relative deadline: the request must *complete* within this budget
    /// (measured from submission) or resolve
    /// [`DesyncError::DeadlineExceeded`] at the next checkpoint.
    pub deadline: Option<Duration>,
    /// An external cancel token (e.g. tied to a client connection). When
    /// `None` the queue creates one; either way the returned
    /// [`TicketHandle`] can cancel.
    pub cancel: Option<CancelToken>,
}

impl SubmitOptions {
    /// Defaults: no deadline, fresh cancel token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the options with a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the options observing an external cancel token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// What happens when a submission meets a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Shed the new request: its ticket resolves
    /// [`DesyncError::QueueFull`] immediately and
    /// [`QueueCounters::shed`] increments. The service stays responsive;
    /// callers retry with backoff.
    #[default]
    RejectNew,
    /// Park the submitting thread until a slot frees — backpressure
    /// propagates to the producer. No deadlock: workers drain
    /// independently of submitters (unless the queue is paused and never
    /// resumed, which is a caller bug).
    BlockSubmitter,
}

/// Configuration of a [`ServiceQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Worker threads draining the queue (clamped to at least one).
    pub workers: usize,
    /// Maximum pending (queued, not yet picked up) requests; `None` =
    /// unbounded.
    pub depth: Option<usize>,
    /// Full-queue behaviour (only meaningful with a depth bound).
    pub admission: AdmissionPolicy,
}

impl Default for QueueConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            depth: None,
            admission: AdmissionPolicy::RejectNew,
        }
    }
}

impl QueueConfig {
    /// `workers` threads, unbounded depth, reject-new admission.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Returns the config with a depth bound.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = Some(depth);
        self
    }

    /// Returns the config with an admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }
}

/// A snapshot of a [`ServiceQueue`]'s traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueCounters {
    /// Requests accepted into the queue (sheds not included).
    pub submitted: usize,
    /// Requests whose execution ran to completion (successfully or with a
    /// typed per-request error other than cancellation/deadline).
    pub completed: usize,
    /// Requests shed by [`AdmissionPolicy::RejectNew`] on a full queue.
    pub shed: usize,
    /// Requests resolved [`DesyncError::Cancelled`] (while queued, at a
    /// stage boundary, or drained on queue drop).
    pub cancelled: usize,
    /// Requests resolved [`DesyncError::DeadlineExceeded`].
    pub deadline_exceeded: usize,
    /// Worker panics contained into [`DesyncError::StagePanicked`]
    /// resolutions (the batch and the workers survived every one).
    pub panics_contained: usize,
    /// Requests pending (queued, not picked up) at snapshot time.
    pub depth: usize,
    /// Highest pending depth ever observed.
    pub high_water: usize,
}

/// One queued unit of work.
///
/// Counter discipline: every path updates the queue counters **before**
/// resolving the ticket, so a caller that observed a resolution (wait,
/// try_wait, poll) also observes the matching counter state — the sync
/// wrappers' reports depend on this.
struct Job {
    /// Executes the request, updates the counters, resolves its ticket.
    /// Receives the shared queue state and the worker index.
    run: JobRun,
    /// Resolves the ticket with an error without executing (pre-pickup
    /// interrupt, drain-cancel, panic containment). Does not touch
    /// counters — callers bump the appropriate one first.
    fail: Box<dyn FnOnce(DesyncError) + Send>,
    /// Checked at pickup, before any engine work.
    interrupt: Interrupt,
}

/// A [`Job`]'s executable body: `(shared, worker_index)`.
type JobRun = Box<dyn FnOnce(&QueueShared, usize) + Send>;

/// Everything the workers and the handle share.
struct QueueShared {
    engine: Arc<DesyncEngine>,
    state: Mutex<QueueState>,
    /// Signals workers: work available, unpaused, or shutdown.
    jobs_ready: Condvar,
    /// Signals blocked submitters: a slot freed.
    space_ready: Condvar,
    depth: Option<usize>,
    admission: AdmissionPolicy,
    submitted: AtomicUsize,
    completed: AtomicUsize,
    shed: AtomicUsize,
    cancelled: AtomicUsize,
    deadline_exceeded: AtomicUsize,
    panics_contained: AtomicUsize,
    /// Simulation events committed per worker (sweep jobs only).
    worker_events: Vec<AtomicUsize>,
}

struct QueueState {
    pending: VecDeque<Job>,
    paused: bool,
    shutdown: bool,
    high_water: usize,
}

impl QueueShared {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The bounded asynchronous submission queue over a shared
/// [`DesyncEngine`]. See the [module documentation](self) for the request
/// lifecycle and determinism notes.
#[derive(Debug)]
pub struct ServiceQueue {
    shared: Arc<QueueShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for QueueShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueShared")
            .field("depth", &self.depth)
            .field("admission", &self.admission)
            .finish_non_exhaustive()
    }
}

impl ServiceQueue {
    /// Spawns a queue with `config` over `engine`.
    pub fn new(engine: Arc<DesyncEngine>, config: QueueConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(QueueShared {
            engine,
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                paused: false,
                shutdown: false,
                high_water: 0,
            }),
            jobs_ready: Condvar::new(),
            space_ready: Condvar::new(),
            depth: config.depth,
            admission: config.admission,
            submitted: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            shed: AtomicUsize::new(0),
            cancelled: AtomicUsize::new(0),
            deadline_exceeded: AtomicUsize::new(0),
            panics_contained: AtomicUsize::new(0),
            worker_events: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
        });
        let workers = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("desync-request-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning queue worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The engine the workers execute against.
    pub fn engine(&self) -> &Arc<DesyncEngine> {
        &self.shared.engine
    }

    /// Submits a design request; the returned ticket resolves with its
    /// [`DesyncDesign`] or a typed error.
    pub fn submit(
        &self,
        request: QueueRequest,
        options: SubmitOptions,
    ) -> TicketHandle<DesyncDesign> {
        let engine = Arc::clone(&self.shared.engine);
        let tag = request.netlist.structural_hash();
        self.submit_job(options, move |interrupt| {
            let result = failpoints::with_tag(tag, || run_design(&engine, &request, interrupt));
            (result, 0)
        })
    }

    /// Submits a verification sweep point; the returned ticket resolves
    /// with its [`EquivalenceReport`] or a typed error.
    pub fn submit_sweep(
        &self,
        request: QueueSweepRequest,
        options: SubmitOptions,
    ) -> TicketHandle<EquivalenceReport> {
        let engine = Arc::clone(&self.shared.engine);
        let tag = request.netlist.structural_hash();
        self.submit_job(options, move |interrupt| {
            match failpoints::with_tag(tag, || run_sweep_point(&engine, &request, interrupt)) {
                Ok((report, simulated)) => (Ok(report), simulated),
                Err(error) => (Err(error), 0),
            }
        })
    }

    /// Submits a packed equivalence campaign point; the returned ticket
    /// resolves with its [`CampaignPointOutcome`] or a typed error. The
    /// `sim::commit` failpoint fires once per packed commit — per *point*,
    /// not per lane — so tag-targeted fault plans hit a campaign point
    /// exactly as often as the equivalent scalar sweep point.
    pub fn submit_campaign(
        &self,
        request: QueueCampaignRequest,
        options: SubmitOptions,
    ) -> TicketHandle<CampaignPointOutcome> {
        let engine = Arc::clone(&self.shared.engine);
        let tag = request.netlist.structural_hash();
        self.submit_job(options, move |interrupt| {
            match failpoints::with_tag(tag, || run_campaign_point(&engine, &request, interrupt)) {
                Ok((outcome, simulated)) => (Ok(outcome), simulated),
                Err(error) => (Err(error), 0),
            }
        })
    }

    /// The shared submission path: admission control, ticket creation,
    /// enqueue. `execute` returns the request's result plus the simulation
    /// events it committed (zero for design requests).
    fn submit_job<T: Send + 'static>(
        &self,
        options: SubmitOptions,
        execute: impl FnOnce(&Interrupt) -> (Result<T, DesyncError>, usize) + Send + 'static,
    ) -> TicketHandle<T> {
        let cancel = options.cancel.unwrap_or_default();
        let deadline = options.deadline.map(|d| Instant::now() + d);
        let interrupt = Interrupt::new(Some(cancel.clone()), deadline);
        let cell = Arc::new(TicketCell::new());
        let handle = TicketHandle {
            cell: Arc::clone(&cell),
            cancel,
        };

        let mut state = self.shared.lock_state();
        if let Some(bound) = self.shared.depth {
            match self.shared.admission {
                AdmissionPolicy::RejectNew => {
                    if state.pending.len() >= bound {
                        drop(state);
                        self.shared.shed.fetch_add(1, Ordering::SeqCst);
                        cell.resolve(Err(DesyncError::QueueFull));
                        return handle;
                    }
                }
                AdmissionPolicy::BlockSubmitter => {
                    while state.pending.len() >= bound && !state.shutdown {
                        state = self
                            .shared
                            .space_ready
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }

        let run_cell = Arc::clone(&cell);
        let run_interrupt = interrupt.clone();
        let fail_cell = Arc::clone(&cell);
        state.pending.push_back(Job {
            run: Box::new(move |shared: &QueueShared, worker: usize| {
                let (result, simulated) = execute(&run_interrupt);
                // Counters strictly before resolution (see `Job` docs).
                match &result {
                    Err(DesyncError::Cancelled) => {
                        shared.cancelled.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(DesyncError::DeadlineExceeded) => {
                        shared.deadline_exceeded.fetch_add(1, Ordering::SeqCst);
                    }
                    _ => {
                        shared.completed.fetch_add(1, Ordering::SeqCst);
                        if simulated > 0 {
                            shared.worker_events[worker].fetch_add(simulated, Ordering::SeqCst);
                        }
                    }
                }
                run_cell.resolve(result);
            }),
            fail: Box::new(move |error| fail_cell.resolve(Err(error))),
            interrupt,
        });
        state.high_water = state.high_water.max(state.pending.len());
        self.shared.submitted.fetch_add(1, Ordering::SeqCst);
        drop(state);
        self.shared.jobs_ready.notify_one();
        handle
    }

    /// Pauses pickup: workers finish their current request and park;
    /// submissions keep queueing. With [`ServiceQueue::resume`] this lets
    /// a caller stage a whole batch before execution starts — the sync
    /// wrappers use it to make `high_water` (and shed patterns under a
    /// depth bound) deterministic.
    pub fn pause(&self) {
        self.shared.lock_state().paused = true;
    }

    /// Resumes pickup after [`ServiceQueue::pause`].
    pub fn resume(&self) {
        self.shared.lock_state().paused = false;
        self.shared.jobs_ready.notify_all();
    }

    /// A snapshot of the queue's traffic counters.
    pub fn counters(&self) -> QueueCounters {
        let (depth, high_water) = {
            let state = self.shared.lock_state();
            (state.pending.len(), state.high_water)
        };
        QueueCounters {
            submitted: self.shared.submitted.load(Ordering::SeqCst),
            completed: self.shared.completed.load(Ordering::SeqCst),
            shed: self.shared.shed.load(Ordering::SeqCst),
            cancelled: self.shared.cancelled.load(Ordering::SeqCst),
            deadline_exceeded: self.shared.deadline_exceeded.load(Ordering::SeqCst),
            panics_contained: self.shared.panics_contained.load(Ordering::SeqCst),
            depth,
            high_water,
        }
    }

    /// Simulation events committed per worker (sweep requests only),
    /// indexed by worker. The total is scheduling-independent; the split
    /// shows the load balance.
    pub fn worker_events(&self) -> Vec<usize> {
        self.shared
            .worker_events
            .iter()
            .map(|e| e.load(Ordering::SeqCst))
            .collect()
    }
}

impl Drop for ServiceQueue {
    fn drop(&mut self) {
        let drained: Vec<Job> = {
            let mut state = self.shared.lock_state();
            state.shutdown = true;
            state.paused = false;
            state.pending.drain(..).collect()
        };
        // Resolve every still-pending ticket Cancelled so no waiter hangs.
        for job in drained {
            self.shared.cancelled.fetch_add(1, Ordering::SeqCst);
            (job.fail)(DesyncError::Cancelled);
        }
        self.shared.jobs_ready.notify_all();
        self.shared.space_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Executes one design request against the shared engine: lint admission
/// gate, then the full construction pipeline. Mirrors the synchronous
/// service exactly (the wrappers' bit-identity to PR-7 rests on this).
fn run_design(
    engine: &DesyncEngine,
    request: &QueueRequest,
    interrupt: &Interrupt,
) -> Result<DesyncDesign, DesyncError> {
    let mut flow = engine.flow(&request.netlist, &request.library, request.options)?;
    flow.set_interrupt(interrupt.clone());
    // Admission control: the O(V+E) lint pre-flight runs (or is served
    // from the store) before any stage computes.
    let lint = flow.lint()?;
    if !lint.is_clean() {
        return Err(DesyncError::LintRejected(lint));
    }
    flow.design()
}

/// Executes one verification sweep point, returning the report plus the
/// events its simulations actually committed (cached sync references count
/// zero — nothing was simulated).
fn run_sweep_point(
    engine: &DesyncEngine,
    request: &QueueSweepRequest,
    interrupt: &Interrupt,
) -> Result<(EquivalenceReport, usize), DesyncError> {
    let mut flow = engine.flow(&request.netlist, &request.library, request.options)?;
    flow.set_interrupt(interrupt.clone());
    let lint = flow.lint()?;
    if !lint.is_clean() {
        return Err(DesyncError::LintRejected(lint));
    }
    flow.set_verification(request.stimulus.clone(), request.cycles);
    let report = flow.verified()?.clone();
    let mut simulated = report.async_run.committed_events;
    if flow.sync_run_cache_hits() == 0 {
        simulated += report.sync_run.committed_events;
    }
    Ok((report, simulated))
}

/// Executes one packed campaign point, returning the outcome plus the
/// word-level events its simulations committed (the packed kernel commits
/// one word event per net change regardless of lane count; cached packed
/// sync references count zero, mirroring the scalar discipline).
fn run_campaign_point(
    engine: &DesyncEngine,
    request: &QueueCampaignRequest,
    interrupt: &Interrupt,
) -> Result<(CampaignPointOutcome, usize), DesyncError> {
    let mut flow = engine.flow(&request.netlist, &request.library, request.options)?;
    flow.set_interrupt(interrupt.clone());
    let lint = flow.lint()?;
    if !lint.is_clean() {
        return Err(DesyncError::LintRejected(lint));
    }
    let report = flow.verify_packed(&request.stimulus, request.cycles)?;
    let sync_cached = flow.sync_run_cache_hits() > 0;
    let mut word_events = report.async_word_events;
    let mut lane_events = report.async_lane_events;
    if !sync_cached {
        word_events += report.sync_word_events;
        lane_events += report.sync_lane_events;
    }
    Ok((
        CampaignPointOutcome {
            report,
            lane_events,
        },
        word_events,
    ))
}

fn worker_loop(shared: &QueueShared, index: usize) {
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if !state.paused {
                    if let Some(job) = state.pending.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                } else if state.shutdown {
                    return;
                }
                state = shared
                    .jobs_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // A slot freed: wake one blocked submitter.
        shared.space_ready.notify_one();

        // Pre-start checkpoint: a request cancelled or expired while
        // queued never touches the engine. Counters before resolution.
        if let Err(error) = job.interrupt.check() {
            match &error {
                DesyncError::Cancelled => shared.cancelled.fetch_add(1, Ordering::SeqCst),
                _ => shared.deadline_exceeded.fetch_add(1, Ordering::SeqCst),
            };
            (job.fail)(error);
            continue;
        }

        // Containment: the request executes under catch_unwind with a
        // clean stage trace; a panic resolves this ticket StagePanicked
        // (naming the stage) and the worker survives. The job updates the
        // counters and resolves its own ticket on the non-panic paths.
        stage_trace::clear();
        let run = job.run;
        if let Err(payload) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || run(shared, index)))
        {
            shared.panics_contained.fetch_add(1, Ordering::SeqCst);
            let stage = stage_trace::take().unwrap_or("request");
            (job.fail)(DesyncError::StagePanicked {
                stage,
                message: panic_message(payload.as_ref()),
            });
        }
    }
}
