//! Step 3 of the flow: the circuit-level control model.
//!
//! Every cluster gets two local clock generators (one for its master/even
//! latches, one for its slave/odd latches). For every pair of adjacent
//! latch controllers the synchronization pattern of the chosen
//! [`Protocol`](crate::Protocol) is instantiated (paper Figure 4), and the
//! composition of all patterns plus the local controller cycles forms the
//! timed marked graph of paper Figure 2. Its liveness and safeness certify
//! the correctness of the control network; its maximum cycle ratio is the
//! cycle time of the desynchronized circuit.

use crate::cluster::{ClusterGraph, Parity};
use crate::controller::{initial_tokens, PairEvent, Protocol};
use desync_mg::timing::{simulate_timed, TimedTrace};
use desync_mg::{MarkedGraph, TransitionId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Delay parameters of the control model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelDelays {
    /// Request/acknowledge propagation delay through one controller, ps.
    pub controller_ps: f64,
    /// Latch data-to-output delay, ps.
    pub latch_ps: f64,
    /// Minimum transparency pulse width of a latch enable, ps.
    pub pulse_width_ps: f64,
}

impl Default for ModelDelays {
    fn default() -> Self {
        Self {
            controller_ps: 120.0,
            latch_ps: 70.0,
            pulse_width_ps: 190.0,
        }
    }
}

/// Name used for the virtual environment controller pair.
pub const ENVIRONMENT_NAME: &str = "env";

/// Forward-delay budgets of the environment arcs: how long data launched by
/// the environment needs to reach each input-fed cluster, and how long each
/// output-feeding cluster's results need to reach the environment.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnvironmentSpec {
    /// Per input-fed cluster: worst-case delay from the primary inputs to
    /// the cluster's register data pins (plus margin), picoseconds.
    pub input_delay_ps: HashMap<usize, f64>,
    /// Per output-feeding cluster: worst-case delay from the cluster's
    /// register outputs to the primary outputs (plus margin), picoseconds.
    pub output_delay_ps: HashMap<usize, f64>,
}

/// One local clock generator (controller) of the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerRef {
    /// Cluster index in the originating [`ClusterGraph`].
    pub cluster: usize,
    /// Cluster name.
    pub cluster_name: String,
    /// Which latch phase this controller drives.
    pub parity: Parity,
    /// Transition of the enable rising edge.
    pub rise: TransitionId,
    /// Transition of the enable falling edge.
    pub fall: TransitionId,
}

impl ControllerRef {
    /// The signal name used in transition labels and enable nets:
    /// `<cluster>_m` or `<cluster>_s`.
    pub fn signal_name(&self) -> String {
        format!("{}_{}", self.cluster_name, self.parity.suffix())
    }
}

/// The composed, timed marked-graph model of the whole control network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlModel {
    /// The composed marked graph (transitions labelled `<cluster>_<m|s>+` /
    /// `...-`, place delays in picoseconds). Private since the cycle-time /
    /// reference-transition analysis is cached at build time — mutating the
    /// graph afterwards would silently desynchronize the cache; read access
    /// goes through [`ControlModel::graph`].
    graph: MarkedGraph,
    /// One controller per cluster and parity, in cluster order (master
    /// first, then slave), optionally followed by the environment pair.
    pub controllers: Vec<ControllerRef>,
    delays: ModelDelays,
    has_environment: bool,
    /// Steady-state cycle time (maximum cycle ratio over all components),
    /// computed once at build time. The maximum-cycle-ratio search runs a
    /// bisection of Bellman-Ford passes, so recomputing it on every
    /// `cycle_time_ps()` call (reports, schedule horizons, sweep rows) was a
    /// measurable share of the verification hot path.
    steady_cycle_time_ps: f64,
    /// Reference transition of the slowest component, cached for
    /// [`ControlModel::simulate`].
    reference: Option<TransitionId>,
}

impl ControlModel {
    /// Builds the control model for a cluster graph.
    ///
    /// `edge_delay_ps` gives, for every cluster edge `(from, to)`, the delay
    /// budget of the forward request arc — normally the matched delay of the
    /// combinational logic between the two clusters plus the latch delay.
    /// Edges missing from the map get the latch delay only (direct
    /// connection).
    pub fn build(
        clusters: &ClusterGraph,
        protocol: Protocol,
        edge_delay_ps: &HashMap<(usize, usize), f64>,
        delays: ModelDelays,
    ) -> Self {
        Self::build_with_environment(clusters, protocol, edge_delay_ps, None, delays)
    }

    /// Builds the control model including an explicit *environment*
    /// controller pair, as the paper's auxiliary arcs prescribe for the
    /// abstracted parts of the system.
    ///
    /// The environment behaves like one extra latch stage: its slave feeds
    /// every input-fed cluster (supplying the input vectors) and every
    /// output-feeding cluster feeds its master (consuming the results). This
    /// keeps all clusters that interact with the outside world synchronized
    /// to the rate at which the environment provides data, which is the
    /// condition under which flow equivalence against a clocked reference is
    /// meaningful.
    pub fn build_with_environment(
        clusters: &ClusterGraph,
        protocol: Protocol,
        edge_delay_ps: &HashMap<(usize, usize), f64>,
        environment: Option<&EnvironmentSpec>,
        delays: ModelDelays,
    ) -> Self {
        let mut graph = MarkedGraph::new();
        let mut controllers = Vec::with_capacity(clusters.len() * 2 + 2);
        let make_controller_pair = |graph: &mut MarkedGraph,
                                    controllers: &mut Vec<ControllerRef>,
                                    idx: usize,
                                    name: &str| {
            for parity in [Parity::Even, Parity::Odd] {
                let signal = format!("{}_{}", name, parity.suffix());
                let rise = graph.add_transition(format!("{signal}+"));
                let fall = graph.add_transition(format!("{signal}-"));
                // Local controller cycle.
                graph.add_place(
                    rise,
                    fall,
                    initial_tokens(parity, true, parity, false),
                    delays.pulse_width_ps,
                );
                graph.add_place(
                    fall,
                    rise,
                    initial_tokens(parity, false, parity, true),
                    delays.controller_ps,
                );
                controllers.push(ControllerRef {
                    cluster: idx,
                    cluster_name: name.to_string(),
                    parity,
                    rise,
                    fall,
                });
            }
        };
        // Create the two controllers (four transitions) per cluster.
        for (idx, cluster) in clusters.clusters.iter().enumerate() {
            make_controller_pair(&mut graph, &mut controllers, idx, &cluster.name);
        }
        let has_environment = environment.is_some();
        if has_environment {
            make_controller_pair(
                &mut graph,
                &mut controllers,
                clusters.len(),
                ENVIRONMENT_NAME,
            );
        }
        let controller_of = |cluster: usize, parity: Parity| -> &ControllerRef {
            &controllers[cluster * 2 + usize::from(parity == Parity::Odd)]
        };

        // Pairwise patterns. The duplicate filter below is a set lookup over
        // (from, to, tokens) instead of a scan of the whole place list per
        // added place (which made model construction quadratic).
        let mut existing_places: std::collections::HashSet<(TransitionId, TransitionId, u32)> =
            graph
                .places()
                .map(|(_, p)| (p.from, p.to, p.initial_tokens))
                .collect();
        let mut add_pair = |graph: &mut MarkedGraph,
                            src: &ControllerRef,
                            dst: &ControllerRef,
                            forward_delay: f64,
                            arcs: &[(PairEvent, PairEvent)]| {
            for &(from, to) in arcs {
                let (from_ctrl, from_rise) = match from {
                    PairEvent::SrcRise => (src, true),
                    PairEvent::SrcFall => (src, false),
                    PairEvent::DstRise => (dst, true),
                    PairEvent::DstFall => (dst, false),
                };
                let (to_ctrl, to_rise) = match to {
                    PairEvent::SrcRise => (src, true),
                    PairEvent::SrcFall => (src, false),
                    PairEvent::DstRise => (dst, true),
                    PairEvent::DstFall => (dst, false),
                };
                let tokens = initial_tokens(from_ctrl.parity, from_rise, to_ctrl.parity, to_rise);
                // The data-carrying arc src+ -> dst- gets the forward delay;
                // every other (acknowledge) arc gets the controller delay.
                let delay = if from == PairEvent::SrcRise && to == PairEvent::DstFall {
                    forward_delay
                } else {
                    delays.controller_ps
                };
                let from_t = if from_rise {
                    from_ctrl.rise
                } else {
                    from_ctrl.fall
                };
                let to_t = if to_rise { to_ctrl.rise } else { to_ctrl.fall };
                // Avoid duplicating an identical place (e.g. self-loop edges).
                if !existing_places.insert((from_t, to_t, tokens)) {
                    continue;
                }
                graph.add_place(from_t, to_t, tokens, delay);
            }
        };

        // Intra-cluster pair: master (even) feeds slave (odd) directly.
        //
        // Within one master/slave pair the two transparency windows must not
        // overlap (a flip-flop is never transparent end to end), so the
        // `a- -> b+` constraint is always added here regardless of the
        // protocol chosen for the inter-stage handshakes. This also anchors
        // the inter-stage matched delays correctly: when a slave opens, its
        // master has already captured the item being forwarded.
        let mut intra_arcs: Vec<(PairEvent, PairEvent)> = protocol.pair_arcs().to_vec();
        if !intra_arcs.contains(&(PairEvent::SrcFall, PairEvent::DstRise)) {
            intra_arcs.push((PairEvent::SrcFall, PairEvent::DstRise));
        }
        for idx in 0..clusters.len() {
            let src = controller_of(idx, Parity::Even).clone();
            let dst = controller_of(idx, Parity::Odd).clone();
            add_pair(&mut graph, &src, &dst, delays.latch_ps, &intra_arcs);
        }
        // The environment pair gets the same intra constraint.
        if has_environment {
            let src = controller_of(clusters.len(), Parity::Even).clone();
            let dst = controller_of(clusters.len(), Parity::Odd).clone();
            add_pair(&mut graph, &src, &dst, delays.latch_ps, &intra_arcs);
        }
        // Inter-cluster pairs: slave (odd) of the source feeds master (even)
        // of the destination through the combinational logic. Here pulses of
        // adjacent stages may overlap — this is the paper's overlapping
        // de-synchronization model.
        for edge in &clusters.edges {
            let src = controller_of(edge.from, Parity::Odd).clone();
            let dst = controller_of(edge.to, Parity::Even).clone();
            let forward = edge_delay_ps
                .get(&(edge.from, edge.to))
                .copied()
                .unwrap_or(delays.latch_ps);
            add_pair(&mut graph, &src, &dst, forward, protocol.pair_arcs());
        }
        // Environment pairs: the environment's slave supplies data to every
        // input-fed cluster and every output-feeding cluster delivers data to
        // the environment's master (the paper's auxiliary arcs).
        if let Some(env) = environment {
            let env_slave = controller_of(clusters.len(), Parity::Odd).clone();
            let env_master = controller_of(clusters.len(), Parity::Even).clone();
            for (idx, &fed) in clusters.input_fed.iter().enumerate() {
                if !fed {
                    continue;
                }
                let dst = controller_of(idx, Parity::Even).clone();
                let forward = env
                    .input_delay_ps
                    .get(&idx)
                    .copied()
                    .unwrap_or(delays.latch_ps);
                add_pair(&mut graph, &env_slave, &dst, forward, protocol.pair_arcs());
            }
            for (idx, &feeding) in clusters.output_feeding.iter().enumerate() {
                if !feeding {
                    continue;
                }
                let src = controller_of(idx, Parity::Odd).clone();
                let forward = env
                    .output_delay_ps
                    .get(&idx)
                    .copied()
                    .unwrap_or(delays.latch_ps);
                add_pair(&mut graph, &src, &env_master, forward, protocol.pair_arcs());
            }
        }

        let mut model = Self {
            graph,
            controllers,
            delays,
            has_environment,
            steady_cycle_time_ps: 0.0,
            reference: None,
        };
        // Cache the per-component cycle-time analysis: the maximum over all
        // components is the steady-state cycle time, and the slowest
        // component supplies the simulation reference transition (ties go to
        // the later component, matching the previous `max_by` behaviour).
        let mut slowest = f64::NEG_INFINITY;
        for component in model.components() {
            let cycle = model.component_graph(&component).cycle_time();
            model.steady_cycle_time_ps = model.steady_cycle_time_ps.max(cycle);
            if cycle >= slowest {
                slowest = cycle;
                model.reference = component.first().copied();
            }
        }
        model
    }

    /// The composed marked graph (read-only: the cycle-time analysis is
    /// cached at build time, so the graph is immutable once built).
    pub fn graph(&self) -> &MarkedGraph {
        &self.graph
    }

    /// Whether the model contains the explicit environment controller pair.
    pub fn has_environment(&self) -> bool {
        self.has_environment
    }

    /// The environment controller of the given parity, when the model was
    /// built with one.
    pub fn environment_controller(&self, parity: Parity) -> Option<&ControllerRef> {
        if !self.has_environment {
            return None;
        }
        self.controllers
            .iter()
            .find(|c| c.cluster_name == ENVIRONMENT_NAME && c.parity == parity)
    }

    /// The delay parameters the model was built with.
    pub fn delays(&self) -> &ModelDelays {
        &self.delays
    }

    /// The controller driving the given cluster and parity.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn controller(&self, cluster: usize, parity: Parity) -> &ControllerRef {
        &self.controllers[cluster * 2 + usize::from(parity == Parity::Odd)]
    }

    /// Number of controllers (two per cluster).
    pub fn num_controllers(&self) -> usize {
        self.controllers.len()
    }

    /// The weakly connected components of the control graph, as transition
    /// sets. Independent register islands (for example a free-running
    /// counter with no data-flow connection to the rest of the design) form
    /// their own components and are analyzed separately.
    pub fn components(&self) -> Vec<Vec<TransitionId>> {
        let n = self.graph.num_transitions();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (_, p) in self.graph.places() {
            let a = find(&mut parent, p.from.index());
            let b = find(&mut parent, p.to.index());
            if a != b {
                parent[a] = b;
            }
        }
        let mut groups: HashMap<usize, Vec<TransitionId>> = HashMap::new();
        for t in 0..n {
            let root = find(&mut parent, t);
            groups.entry(root).or_default().push(TransitionId(t as u32));
        }
        let mut components: Vec<Vec<TransitionId>> = groups.into_values().collect();
        components.sort_by_key(|c| c.iter().map(|t| t.index()).min().unwrap_or(0));
        components
    }

    /// Extracts the sub-marked-graph induced by a set of transitions.
    pub fn component_graph(&self, transitions: &[TransitionId]) -> MarkedGraph {
        let mut sub = MarkedGraph::new();
        let mut map: HashMap<TransitionId, TransitionId> = HashMap::new();
        for &t in transitions {
            let new = sub.add_transition(self.graph.transition(t).label.clone());
            map.insert(t, new);
        }
        for (_, p) in self.graph.places() {
            if let (Some(&f), Some(&t)) = (map.get(&p.from), map.get(&p.to)) {
                sub.add_place(f, t, p.initial_tokens, p.delay);
            }
        }
        sub
    }

    /// Whether every component of the control model is live.
    pub fn is_live(&self) -> bool {
        self.components()
            .iter()
            .all(|c| self.component_graph(c).is_live())
    }

    /// Whether every component of the control model is safe.
    pub fn is_safe(&self) -> bool {
        self.components()
            .iter()
            .all(|c| self.component_graph(c).is_safe())
    }

    /// Witness-producing proof of the model's structural correctness: runs
    /// the `desync-lint` marked-graph suite on every weakly connected
    /// component and merges the diagnostics.
    ///
    /// A clean report is the static certificate behind
    /// [`ControlModel::is_live`] / [`ControlModel::is_safe`]; a dirty one
    /// names the exact token-free or overloaded cycle (as transition
    /// labels), which the bare booleans cannot.
    pub fn lint(&self) -> desync_lint::LintReport {
        let mut report = desync_lint::LintReport::new();
        for component in self.components() {
            report.merge(desync_lint::lint_marked_graph(
                &self.component_graph(&component),
            ));
        }
        report
    }

    /// The steady-state cycle time of the desynchronized circuit: the
    /// maximum cycle ratio over all components, in picoseconds (computed
    /// once at build time).
    pub fn cycle_time_ps(&self) -> f64 {
        self.steady_cycle_time_ps
    }

    /// Simulates the timed token game for `iterations` firings of the
    /// slowest component's reference transition (cached at build time) and
    /// returns the trace (used to derive the latch-enable schedule for
    /// gate-level co-simulation).
    pub fn simulate(&self, iterations: usize) -> TimedTrace {
        simulate_timed(&self.graph, iterations, self.reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterEdge};
    use desync_netlist::CellId;

    /// A hand-built cluster graph: a linear chain of `n` clusters.
    fn chain_clusters(n: usize) -> ClusterGraph {
        ClusterGraph {
            clusters: (0..n)
                .map(|i| Cluster {
                    name: format!("st{i}"),
                    registers: vec![CellId(i as u32)],
                })
                .collect(),
            edges: (1..n).map(|i| ClusterEdge { from: i - 1, to: i }).collect(),
            input_fed: (0..n).map(|i| i == 0).collect(),
            output_feeding: (0..n).map(|i| i == n - 1).collect(),
        }
    }

    fn uniform_delays(clusters: &ClusterGraph, d: f64) -> HashMap<(usize, usize), f64> {
        clusters.edges.iter().map(|e| ((e.from, e.to), d)).collect()
    }

    #[test]
    fn pipeline_model_is_live_and_safe_for_all_protocols() {
        let clusters = chain_clusters(4);
        let delays = uniform_delays(&clusters, 900.0);
        for &protocol in Protocol::all() {
            let model = ControlModel::build(&clusters, protocol, &delays, ModelDelays::default());
            assert_eq!(model.num_controllers(), 8);
            assert!(model.is_live(), "{protocol} must be live");
            assert!(model.is_safe(), "{protocol} must be safe");
            assert!(model.cycle_time_ps() > 0.0);
        }
    }

    #[test]
    fn fully_decoupled_is_fastest() {
        let clusters = chain_clusters(4);
        let delays = uniform_delays(&clusters, 900.0);
        let ct = |p: Protocol| {
            ControlModel::build(&clusters, p, &delays, ModelDelays::default()).cycle_time_ps()
        };
        let fd = ct(Protocol::FullyDecoupled);
        let sd = ct(Protocol::SemiDecoupled);
        let no = ct(Protocol::NonOverlapping);
        // Adding constraints can only slow the model down (up to numerical
        // tolerance of the cycle-ratio computation). For a balanced pipeline
        // the critical cycle is the same request/acknowledge loop for every
        // protocol, so the times may coincide.
        let tol = 1e-6 * fd.max(1.0);
        assert!(fd <= sd + tol, "fully-decoupled {fd} vs semi {sd}");
        assert!(sd <= no + tol, "semi {sd} vs non-overlapping {no}");
    }

    #[test]
    fn cycle_time_tracks_stage_delay() {
        let clusters = chain_clusters(3);
        let slow = ControlModel::build(
            &clusters,
            Protocol::FullyDecoupled,
            &uniform_delays(&clusters, 2_000.0),
            ModelDelays::default(),
        );
        let fast = ControlModel::build(
            &clusters,
            Protocol::FullyDecoupled,
            &uniform_delays(&clusters, 500.0),
            ModelDelays::default(),
        );
        assert!(slow.cycle_time_ps() > fast.cycle_time_ps());
        // The slow design's cycle time is at least the stage delay.
        assert!(slow.cycle_time_ps() >= 2_000.0);
    }

    #[test]
    fn self_loop_cluster_forms_its_own_live_ring() {
        // A single cluster feeding itself (a counter).
        let clusters = ClusterGraph {
            clusters: vec![Cluster {
                name: "count".into(),
                registers: vec![CellId(0)],
            }],
            edges: vec![ClusterEdge { from: 0, to: 0 }],
            input_fed: vec![false],
            output_feeding: vec![true],
        };
        let delays = uniform_delays(&clusters, 600.0);
        let model = ControlModel::build(
            &clusters,
            Protocol::FullyDecoupled,
            &delays,
            ModelDelays::default(),
        );
        assert!(model.is_live());
        assert!(model.is_safe());
        assert!(model.cycle_time_ps() >= 600.0);
    }

    #[test]
    fn disconnected_clusters_are_separate_components() {
        // Two clusters with no edge between them.
        let clusters = ClusterGraph {
            clusters: vec![
                Cluster {
                    name: "a".into(),
                    registers: vec![CellId(0)],
                },
                Cluster {
                    name: "b".into(),
                    registers: vec![CellId(1)],
                },
            ],
            edges: vec![],
            input_fed: vec![true, true],
            output_feeding: vec![true, true],
        };
        let model = ControlModel::build(
            &clusters,
            Protocol::FullyDecoupled,
            &HashMap::new(),
            ModelDelays::default(),
        );
        assert_eq!(model.components().len(), 2);
        assert!(model.is_live());
        assert!(model.is_safe());
    }

    #[test]
    fn simulation_period_matches_cycle_time() {
        let clusters = chain_clusters(4);
        let delays = uniform_delays(&clusters, 900.0);
        let model = ControlModel::build(
            &clusters,
            Protocol::FullyDecoupled,
            &delays,
            ModelDelays::default(),
        );
        let trace = model.simulate(40);
        assert!(trace.iterations >= 30);
        let analytic = model.cycle_time_ps();
        assert!(
            (trace.period - analytic).abs() / analytic < 0.05,
            "simulated {} vs analytic {}",
            trace.period,
            analytic
        );
    }

    #[test]
    fn controller_lookup_and_labels() {
        let clusters = chain_clusters(2);
        let model = ControlModel::build(
            &clusters,
            Protocol::FullyDecoupled,
            &uniform_delays(&clusters, 100.0),
            ModelDelays::default(),
        );
        let c = model.controller(1, Parity::Odd);
        assert_eq!(c.cluster, 1);
        assert_eq!(c.signal_name(), "st1_s");
        assert_eq!(model.graph().transition(c.rise).label, "st1_s+");
        assert_eq!(model.graph().transition(c.fall).label, "st1_s-");
        assert_eq!(model.delays().latch_ps, ModelDelays::default().latch_ps);
    }

    #[test]
    fn model_is_consistent_as_an_stg() {
        let clusters = chain_clusters(3);
        let model = ControlModel::build(
            &clusters,
            Protocol::FullyDecoupled,
            &uniform_delays(&clusters, 500.0),
            ModelDelays::default(),
        );
        let stg = desync_mg::Stg::from_graph(model.graph().clone());
        assert_eq!(stg.is_consistent(200_000), Some(true));
    }
}
