//! The one-call desynchronization flow and its product.
//!
//! [`Desynchronizer::run`] is a thin convenience wrapper over the staged
//! pipeline ([`DesyncFlow`](crate::DesyncFlow)): it advances a fresh flow
//! through clustering, latch conversion, matched-delay sizing and controller
//! synthesis, and bundles the artifacts into a [`DesyncDesign`]. Use the
//! staged API directly when you need intermediate artifacts, want to resume
//! after changing a knob, or need per-stage timing.

use crate::cluster::{ClusterGraph, Parity};
use crate::controller::ControllerImpl;
use crate::conversion::LatchDesign;
use crate::error::DesyncError;
use crate::model::ControlModel;
use crate::options::DesyncOptions;
use crate::pipeline::DesyncFlow;
use desync_netlist::{CellLibrary, Netlist, Value};
use desync_sim::EnableSchedule;
use desync_sta::MatchedDelay;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The desynchronization engine, bound to one netlist, library and option
/// set.
///
/// This is the one-call entry point; it delegates to the staged
/// [`DesyncFlow`](crate::DesyncFlow) and produces the identical
/// [`DesyncDesign`].
#[derive(Debug, Clone)]
pub struct Desynchronizer<'a> {
    netlist: &'a Netlist,
    library: &'a CellLibrary,
    options: DesyncOptions,
}

impl<'a> Desynchronizer<'a> {
    /// Creates a new flow instance.
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary, options: DesyncOptions) -> Self {
        Self {
            netlist,
            library,
            options,
        }
    }

    /// The options the flow will use.
    pub fn options(&self) -> &DesyncOptions {
        &self.options
    }

    /// Runs the complete flow by advancing a fresh
    /// [`DesyncFlow`](crate::DesyncFlow) through every construction stage.
    ///
    /// # Errors
    ///
    /// * [`DesyncError::InvalidOptions`] when the options fail
    ///   [`DesyncOptions::validate`].
    /// * [`DesyncError::Netlist`] / [`DesyncError::NoRegisters`] /
    ///   [`DesyncError::AlreadyLatchBased`] when the input netlist is not a
    ///   valid single-clock flip-flop design.
    /// * [`DesyncError::ModelCheck`] when the composed control model fails
    ///   the liveness or safeness check (this indicates an internal error —
    ///   the construction is correct by design for valid inputs).
    pub fn run(&self) -> Result<DesyncDesign, DesyncError> {
        DesyncFlow::new(self.netlist, self.library, self.options)?.design()
    }
}

/// The product of the desynchronization flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesyncDesign {
    original_name: String,
    options: DesyncOptions,
    clusters: ClusterGraph,
    latch_design: LatchDesign,
    overhead: Netlist,
    controllers: Vec<ControllerImpl>,
    matched_delays: HashMap<(usize, usize), MatchedDelay>,
    control_model: ControlModel,
    sync_clock_period_ps: f64,
}

/// The latch-enable schedule derived from the control model for gate-level
/// co-simulation, plus the recommended times at which the environment should
/// apply its input vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleBundle {
    /// Enable events for the latch datapath (absolute times, picoseconds).
    pub schedule: EnableSchedule,
    /// Time of the last scheduled event.
    pub horizon_ps: f64,
    /// `input_vector_times[k]` is the time at which input vector `k` should
    /// be applied so that the captured streams line up with the synchronous
    /// execution (right after the `k`-th capture of the input-fed master
    /// latches).
    pub input_vector_times: Vec<f64>,
    /// Number of handshake iterations the schedule covers.
    pub iterations: usize,
}

impl DesyncDesign {
    /// Assembles a design from the staged pipeline's artifacts (used by
    /// [`DesyncFlow::design`](crate::DesyncFlow::design)).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        original_name: String,
        options: DesyncOptions,
        clusters: ClusterGraph,
        latch_design: LatchDesign,
        overhead: Netlist,
        controllers: Vec<ControllerImpl>,
        matched_delays: HashMap<(usize, usize), MatchedDelay>,
        control_model: ControlModel,
        sync_clock_period_ps: f64,
    ) -> Self {
        Self {
            original_name,
            options,
            clusters,
            latch_design,
            overhead,
            controllers,
            matched_delays,
            control_model,
            sync_clock_period_ps,
        }
    }

    /// Name of the original synchronous netlist.
    pub fn original_name(&self) -> &str {
        &self.original_name
    }

    /// The options the design was produced with.
    pub fn options(&self) -> &DesyncOptions {
        &self.options
    }

    /// The cluster graph of the original netlist.
    pub fn clusters(&self) -> &ClusterGraph {
        &self.clusters
    }

    /// The latch-based datapath and its register mapping.
    pub fn latch_design(&self) -> &LatchDesign {
        &self.latch_design
    }

    /// The latch-based datapath netlist (enables as primary inputs).
    pub fn latch_netlist(&self) -> &Netlist {
        &self.latch_design.netlist
    }

    /// The overhead netlist: handshake controllers (`ctl_*`) and matched
    /// delay lines (`md_*`).
    pub fn overhead_netlist(&self) -> &Netlist {
        &self.overhead
    }

    /// The generated controllers.
    pub fn controllers(&self) -> &[ControllerImpl] {
        &self.controllers
    }

    /// The matched delay sized for each cluster edge.
    pub fn matched_delays(&self) -> &HashMap<(usize, usize), MatchedDelay> {
        &self.matched_delays
    }

    /// The timed marked-graph model of the control network.
    pub fn control_model(&self) -> &ControlModel {
        &self.control_model
    }

    /// The clock period of the synchronous baseline (from STA), picoseconds.
    pub fn synchronous_period_ps(&self) -> f64 {
        self.sync_clock_period_ps
    }

    /// The steady-state cycle time of the desynchronized design,
    /// picoseconds.
    pub fn cycle_time_ps(&self) -> f64 {
        self.control_model.cycle_time_ps()
    }

    /// Analytic dynamic power of the desynchronization overhead, in
    /// milliwatts: every controller and matched-delay cell output toggles
    /// twice per handshake cycle, and every latch enable pin (the local
    /// "clock" distribution that replaces the global tree) is charged and
    /// discharged once per cycle.
    pub fn overhead_power_mw(&self, library: &CellLibrary) -> f64 {
        let cycle = self.cycle_time_ps();
        if cycle <= 0.0 {
            return 0.0;
        }
        let cell_energy_fj: f64 = self
            .overhead
            .cells()
            .map(|(_, c)| 2.0 * library.template(c.kind).switch_energy_fj)
            .sum();
        // Local enable distribution: two transitions per cycle on every latch
        // enable pin plus a *short local* wire (the controllers sit next to
        // their latch clusters, unlike the global clock tree), at a nominal
        // 1 V supply.
        let latch_cap_ff = library
            .get(desync_netlist::CellKind::LatchHigh)
            .map(|t| t.input_cap_ff)
            .unwrap_or(2.0);
        let wire_cap_ff = 1.0;
        let enable_energy_fj =
            2.0 * self.latch_design.netlist.num_latches() as f64 * (latch_cap_ff + wire_cap_ff);
        (cell_energy_fj + enable_energy_fj) / cycle
    }

    /// Derives the latch-enable schedule (and the input application times)
    /// for `iterations` handshake iterations of the control model, shifted
    /// by `start_offset_ps` to leave room for simulator initialization.
    pub fn enable_schedule(&self, iterations: usize, start_offset_ps: f64) -> ScheduleBundle {
        let trace = self.control_model.simulate(iterations);
        let mut schedule = EnableSchedule::new();
        let num_clusters = self.clusters.len();
        // Controller transition -> (enable net, rising?). The environment
        // controllers have no physical enable net and are skipped here.
        let mut fall_times_per_input_cluster: Vec<Vec<f64>> = Vec::new();
        let mut event_map: HashMap<u32, (desync_netlist::NetId, bool, Option<usize>)> =
            HashMap::new();
        for ctrl in &self.control_model.controllers {
            if ctrl.cluster >= num_clusters {
                continue; // virtual environment controller
            }
            let (master_en, slave_en) = self.latch_design.enable_nets(ctrl.cluster);
            let net = match ctrl.parity {
                Parity::Even => master_en,
                Parity::Odd => slave_en,
            };
            // Track master-fall times of input-fed clusters; they time the
            // environment's input vectors when no explicit environment
            // controller is present.
            let input_slot = if ctrl.parity == Parity::Even && self.clusters.input_fed[ctrl.cluster]
            {
                fall_times_per_input_cluster.push(Vec::new());
                Some(fall_times_per_input_cluster.len() - 1)
            } else {
                None
            };
            event_map.insert(ctrl.rise.0, (net, true, None));
            event_map.insert(ctrl.fall.0, (net, false, input_slot));
        }
        for firing in &trace.firings {
            if let Some(&(net, rising, input_slot)) = event_map.get(&firing.transition.0) {
                let time = firing.time + start_offset_ps;
                schedule.push(time, net, if rising { Value::One } else { Value::Zero });
                if let Some(slot) = input_slot {
                    fall_times_per_input_cluster[slot].push(time);
                }
            }
        }
        // Input vector timing.
        let input_vector_times: Vec<f64> = if let Some(env_slave) = self
            .control_model
            .environment_controller(crate::cluster::Parity::Odd)
        {
            // With an explicit environment, vector k is launched when the
            // environment's slave opens for the k-th time: by construction
            // that is after every input-fed master captured item k and
            // before any of them captures item k + 1.
            trace
                .firings
                .iter()
                .filter(|f| f.transition == env_slave.rise)
                .map(|f| f.time + start_offset_ps + 1.0)
                .collect()
        } else {
            // Fallback (no environment): vector k goes out right after the
            // k-th capture of the input-fed master latches (the latest such
            // capture across clusters).
            let max_falls = fall_times_per_input_cluster
                .iter()
                .map(Vec::len)
                .min()
                .unwrap_or(0);
            (0..max_falls)
                .map(|k| {
                    fall_times_per_input_cluster
                        .iter()
                        .map(|falls| falls[k])
                        .fold(0.0, f64::max)
                        + 1.0
                })
                .collect()
        };
        ScheduleBundle {
            horizon_ps: schedule.horizon_ps(),
            schedule,
            input_vector_times,
            iterations,
        }
    }

    /// A compact summary of the design for reports and the example binaries.
    pub fn summary(&self) -> DesyncSummary {
        let total_delay_cells: usize = self.matched_delays.values().map(|m| m.num_cells).sum();
        let controller_cells: usize = self.controllers.iter().map(ControllerImpl::num_cells).sum();
        DesyncSummary {
            original_name: self.original_name.clone(),
            protocol: self.options.protocol,
            clusters: self.clusters.len(),
            cluster_edges: self.clusters.edges.len(),
            flip_flops: self.clusters.num_registers(),
            latches: self.latch_design.netlist.num_latches(),
            controllers: self.controllers.len(),
            controller_cells,
            matched_delay_cells: total_delay_cells,
            sync_period_ps: self.sync_clock_period_ps,
            desync_cycle_time_ps: self.cycle_time_ps(),
        }
    }
}

/// Headline numbers of a desynchronized design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesyncSummary {
    /// Name of the original synchronous module.
    pub original_name: String,
    /// Handshake protocol used.
    pub protocol: crate::controller::Protocol,
    /// Number of latch clusters.
    pub clusters: usize,
    /// Number of cluster-to-cluster data-flow edges.
    pub cluster_edges: usize,
    /// Flip-flops in the original design.
    pub flip_flops: usize,
    /// Latches in the desynchronized datapath (2 × flip-flops).
    pub latches: usize,
    /// Number of local clock generators (2 × clusters).
    pub controllers: usize,
    /// Total cells across all controllers.
    pub controller_cells: usize,
    /// Total delay cells across all matched-delay lines.
    pub matched_delay_cells: usize,
    /// Synchronous clock period from STA, picoseconds.
    pub sync_period_ps: f64,
    /// Desynchronized cycle time from the control model, picoseconds.
    pub desync_cycle_time_ps: f64,
}

impl std::fmt::Display for DesyncSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "desynchronization of `{}`", self.original_name)?;
        writeln!(f, "  protocol:            {}", self.protocol)?;
        writeln!(f, "  clusters:            {}", self.clusters)?;
        writeln!(f, "  cluster edges:       {}", self.cluster_edges)?;
        writeln!(
            f,
            "  flip-flops -> latches: {} -> {}",
            self.flip_flops, self.latches
        )?;
        writeln!(
            f,
            "  controllers:         {} ({} cells)",
            self.controllers, self.controller_cells
        )?;
        writeln!(f, "  matched-delay cells: {}", self.matched_delay_cells)?;
        writeln!(f, "  sync clock period:   {:.1} ps", self.sync_period_ps)?;
        write!(
            f,
            "  desync cycle time:   {:.1} ps",
            self.desync_cycle_time_ps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Protocol;
    use crate::options::ClusteringStrategy;
    use desync_netlist::CellKind;

    fn pipeline3() -> Netlist {
        let mut n = Netlist::new("pipe3");
        let clk = n.add_input("clk");
        let a = n.add_input("a");
        let q0 = n.add_net("q0");
        let w0 = n.add_net("w0");
        let q1 = n.add_net("q1");
        let w1 = n.add_net("w1");
        let q2 = n.add_output("q2");
        n.add_dff("r0", a, clk, q0).unwrap();
        n.add_gate("g0", CellKind::Not, &[q0], w0).unwrap();
        n.add_dff("r1", w0, clk, q1).unwrap();
        n.add_gate("g1", CellKind::Buf, &[q1], w1).unwrap();
        n.add_dff("r2", w1, clk, q2).unwrap();
        n
    }

    fn lib() -> CellLibrary {
        CellLibrary::generic_90nm()
    }

    #[test]
    fn flow_runs_end_to_end_on_pipeline() {
        let n = pipeline3();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        assert!(design.control_model().is_live());
        assert!(design.control_model().is_safe());
        assert!(design.cycle_time_ps() > 0.0);
        assert!(design.synchronous_period_ps() > 0.0);
        assert_eq!(design.latch_netlist().num_latches(), 6);
        assert_eq!(design.clusters().len(), 3);
        assert_eq!(design.controllers().len(), 6);
        assert!(design.overhead_netlist().validate().is_ok());
        assert!(design.overhead_power_mw(&library) > 0.0);
        assert_eq!(design.original_name(), "pipe3");
        assert_eq!(design.options().protocol, Protocol::FullyDecoupled);
        let s = design.summary();
        assert_eq!(s.flip_flops, 3);
        assert_eq!(s.latches, 6);
        assert!(s.to_string().contains("desynchronization of `pipe3`"));
        // Matched delays cover the combinational logic.
        assert!(design.matched_delays().values().all(|m| m.covers_logic()));
    }

    #[test]
    fn desync_cycle_time_is_close_to_sync_period() {
        let n = pipeline3();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let sync = design.synchronous_period_ps();
        let desync = design.cycle_time_ps();
        // The paper's headline result is near-identical cycle time on a real
        // processor, where the combinational stage delay dwarfs the
        // handshake overhead. This unit-test pipeline has almost no logic
        // between registers, so the controller overhead dominates; the bound
        // here only checks the overhead stays within a small constant factor
        // (the DLX-scale comparison lives in the benchmark harness).
        assert!(
            desync > 0.5 * sync && desync < 8.0 * sync,
            "sync {sync} desync {desync}"
        );
    }

    #[test]
    fn schedule_covers_all_enables_and_inputs() {
        let n = pipeline3();
        let library = lib();
        let design = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let bundle = design.enable_schedule(10, 500.0);
        assert_eq!(bundle.iterations, 10);
        assert!(!bundle.schedule.is_empty());
        assert!(bundle.horizon_ps > 500.0);
        // Input vectors are timed after the first capture of the input-fed
        // master latch; there is one input-fed cluster (r0).
        assert!(bundle.input_vector_times.len() >= 8);
        assert!(bundle.input_vector_times.windows(2).all(|w| w[1] > w[0]));
        // All scheduled times respect the start offset.
        assert!(bundle
            .schedule
            .sorted_events()
            .iter()
            .all(|&(t, _, _)| t >= 500.0));
    }

    #[test]
    fn per_register_clustering_gives_more_controllers() {
        let n = pipeline3();
        let library = lib();
        let prefix = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap();
        let per_reg = Desynchronizer::new(
            &n,
            &library,
            DesyncOptions::default().with_clustering(ClusteringStrategy::PerRegister),
        )
        .run()
        .unwrap();
        // Same number here because each register already has a unique prefix,
        // but the per-register run must not be coarser.
        assert!(per_reg.clusters().len() >= prefix.clusters().len());
    }

    #[test]
    fn flow_rejects_register_free_netlists() {
        let mut n = Netlist::new("comb");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let library = lib();
        let err = Desynchronizer::new(&n, &library, DesyncOptions::default())
            .run()
            .unwrap_err();
        assert_eq!(err, DesyncError::NoRegisters);
    }

    #[test]
    fn protocols_trade_cycle_time() {
        let n = pipeline3();
        let library = lib();
        let cycle = |p: Protocol| {
            Desynchronizer::new(&n, &library, DesyncOptions::default().with_protocol(p))
                .run()
                .unwrap()
                .cycle_time_ps()
        };
        let fd = cycle(Protocol::FullyDecoupled);
        let no = cycle(Protocol::NonOverlapping);
        assert!(
            fd <= no + 1e-6 * fd.max(1.0),
            "fully-decoupled {fd} vs non-overlapping {no}"
        );
    }
}
