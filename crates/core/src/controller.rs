//! Handshake controller protocols: their marked-graph synchronization
//! patterns (paper Figure 4) and a gate-level implementation generator used
//! for area and power accounting.

use crate::cluster::Parity;
use desync_netlist::{CellKind, NetId, Netlist, NetlistError};
use serde::{Deserialize, Serialize};

/// The handshake protocol implemented by the local clock generators.
///
/// All three protocols are expressed as sets of causality arcs between the
/// rising (`+`, latch becomes transparent) and falling (`-`, latch captures)
/// events of a *source* latch controller `a` and a *destination* latch
/// controller `b`, for every pair of adjacent latches `a → b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Protocol {
    /// The paper's overlapping de-synchronization model: the destination may
    /// only capture after the source produced the data (`a+ → b-`) and the
    /// source may only produce the next item after the destination captured
    /// the previous one (`b- → a+`). Control pulses of adjacent latches may
    /// overlap; this is the most concurrent and fastest protocol.
    #[default]
    FullyDecoupled,
    /// Adds `a- → b+`: the destination latch only becomes transparent after
    /// the source latch has captured. Slightly less concurrent; simplifies
    /// the controller implementation.
    SemiDecoupled,
    /// A fully interlocked four-phase scheme: adjacent latch enable pulses
    /// never overlap (`a- → b+` and `b+ → a-` in addition to the
    /// fully-decoupled arcs). The simplest controllers and the slowest
    /// cycle time.
    NonOverlapping,
}

impl Protocol {
    /// All protocol variants (useful for ablation sweeps).
    pub fn all() -> &'static [Protocol] {
        &[
            Protocol::FullyDecoupled,
            Protocol::SemiDecoupled,
            Protocol::NonOverlapping,
        ]
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::FullyDecoupled => "fully-decoupled",
            Protocol::SemiDecoupled => "semi-decoupled",
            Protocol::NonOverlapping => "non-overlapping",
        }
    }

    /// The causality arcs this protocol imposes between a source controller
    /// `a` and a destination controller `b` of an adjacent latch pair.
    pub fn pair_arcs(self) -> &'static [(PairEvent, PairEvent)] {
        use PairEvent::*;
        match self {
            Protocol::FullyDecoupled => &[(SrcRise, DstFall), (DstFall, SrcRise)],
            Protocol::SemiDecoupled => {
                &[(SrcRise, DstFall), (DstFall, SrcRise), (SrcFall, DstRise)]
            }
            Protocol::NonOverlapping => &[
                (SrcRise, DstFall),
                (DstFall, SrcRise),
                (SrcFall, DstRise),
                (DstRise, SrcFall),
            ],
        }
    }

    /// The number of Muller C-elements and simple gates of one controller
    /// implementation, as `(c_elements, gates)`.
    ///
    /// The counts follow the published latch-controller circuits: the more
    /// concurrent the protocol, the larger the controller.
    pub fn controller_cells(self) -> (usize, usize) {
        match self {
            Protocol::FullyDecoupled => (3, 4),
            Protocol::SemiDecoupled => (2, 3),
            Protocol::NonOverlapping => (1, 2),
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The four events of a pairwise synchronization pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PairEvent {
    /// Source latch enable rises (source becomes transparent).
    SrcRise,
    /// Source latch enable falls (source captures).
    SrcFall,
    /// Destination latch enable rises.
    DstRise,
    /// Destination latch enable falls (destination captures).
    DstFall,
}

impl PairEvent {
    /// Whether the event belongs to the source controller.
    pub fn is_source(self) -> bool {
        matches!(self, PairEvent::SrcRise | PairEvent::SrcFall)
    }

    /// Whether the event is a rising edge.
    pub fn is_rise(self) -> bool {
        matches!(self, PairEvent::SrcRise | PairEvent::DstRise)
    }
}

/// The position of a controller event in the canonical synchronous schedule
/// `even+ , even- , odd+ , odd-` (the order in which the latch-based
/// synchronous circuit of Figure 1(b) fires its events in each clock
/// period, starting from the reset state in which all latches are opaque
/// and the slave latches hold the register state).
///
/// The initial marking of every causality arc is derived from this schedule:
/// an arc `x → y` carries a token exactly when `y`'s next firing belongs to
/// the following iteration, i.e. when `position(y) <= position(x)`.
pub fn phase_position(parity: Parity, rise: bool) -> u8 {
    match (parity, rise) {
        (Parity::Even, true) => 0,
        (Parity::Even, false) => 1,
        (Parity::Odd, true) => 2,
        (Parity::Odd, false) => 3,
    }
}

/// The initial token count (0 or 1) of an arc from event `(from_parity,
/// from_rise)` to event `(to_parity, to_rise)` under the canonical schedule.
pub fn initial_tokens(
    from_parity: Parity,
    from_rise: bool,
    to_parity: Parity,
    to_rise: bool,
) -> u32 {
    u32::from(phase_position(to_parity, to_rise) <= phase_position(from_parity, from_rise))
}

/// A generated gate-level controller instance (used for area and power
/// accounting of the desynchronization overhead).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerImpl {
    /// Cluster the controller belongs to.
    pub cluster: String,
    /// Latch parity it drives.
    pub parity: Parity,
    /// Instance names of the cells making up the controller.
    pub cells: Vec<String>,
    /// Name of the enable output net.
    pub enable_net: String,
}

impl ControllerImpl {
    /// Generates the gate-level controller for one cluster/parity pair into
    /// `netlist` (the *overhead* netlist, separate from the datapath).
    ///
    /// The controller is a chain of C-elements and inverters matching the
    /// cell counts of [`Protocol::controller_cells`], plus a buffer tree
    /// sized to drive `num_latches` latch enables. Its request input is a
    /// fresh primary input and its enable output is marked as a primary
    /// output, so the overhead netlist is a valid standalone netlist.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors (duplicate cluster names).
    pub fn generate(
        netlist: &mut Netlist,
        cluster: &str,
        parity: Parity,
        protocol: Protocol,
        num_latches: usize,
    ) -> Result<Self, NetlistError> {
        let suffix = parity.suffix();
        let prefix = format!("ctl_{cluster}_{suffix}");
        let (n_c, n_gates) = protocol.controller_cells();
        let req = netlist.add_input(format!("{prefix}_req"));
        let ack = netlist.add_input(format!("{prefix}_ack"));
        let mut cells = Vec::new();
        let mut current: NetId = req;
        for i in 0..n_c {
            let out = netlist.add_net(format!("{prefix}_c{i}_y"));
            let name = format!("{prefix}_c{i}");
            netlist.add_c_element(&name, &[current, ack], out)?;
            cells.push(name);
            current = out;
        }
        for i in 0..n_gates {
            let out = netlist.add_net(format!("{prefix}_g{i}_y"));
            let name = format!("{prefix}_g{i}");
            let kind = if i % 2 == 0 {
                CellKind::Not
            } else {
                CellKind::Nand
            };
            let inputs: Vec<NetId> = if kind == CellKind::Not {
                vec![current]
            } else {
                vec![current, req]
            };
            netlist.add_gate(&name, kind, &inputs, out)?;
            cells.push(name);
            current = out;
        }
        // Enable driver buffers: one buffer per 12 latch enables.
        let num_buffers = num_latches.div_ceil(12).max(1);
        let mut enable_net = current;
        for i in 0..num_buffers {
            let out = netlist.add_net(format!("{prefix}_en{i}"));
            let name = format!("{prefix}_buf{i}");
            netlist.add_gate(&name, CellKind::Buf, &[current], out)?;
            cells.push(name);
            enable_net = out;
        }
        netlist.mark_output(enable_net);
        Ok(Self {
            cluster: cluster.to_string(),
            parity,
            cells,
            enable_net: netlist.net(enable_net).name.to_string(),
        })
    }

    /// Number of cells in this controller.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_metadata() {
        assert_eq!(Protocol::all().len(), 3);
        assert_eq!(Protocol::default(), Protocol::FullyDecoupled);
        for &p in Protocol::all() {
            assert!(!p.name().is_empty());
            assert!(!p.pair_arcs().is_empty());
            let (c, g) = p.controller_cells();
            assert!(c >= 1 && g >= 1);
            assert!(p.to_string().contains('-'));
        }
        // More concurrency -> more arcs removed / fewer constraints.
        assert!(
            Protocol::FullyDecoupled.pair_arcs().len() < Protocol::NonOverlapping.pair_arcs().len()
        );
    }

    #[test]
    fn pair_event_helpers() {
        assert!(PairEvent::SrcRise.is_source());
        assert!(!PairEvent::DstFall.is_source());
        assert!(PairEvent::DstRise.is_rise());
        assert!(!PairEvent::SrcFall.is_rise());
    }

    #[test]
    fn phase_positions_follow_canonical_order() {
        assert_eq!(phase_position(Parity::Even, true), 0);
        assert_eq!(phase_position(Parity::Even, false), 1);
        assert_eq!(phase_position(Parity::Odd, true), 2);
        assert_eq!(phase_position(Parity::Odd, false), 3);
    }

    #[test]
    fn token_rule_matches_paper_patterns() {
        // Odd (slave, full) -> even (master, empty): data available, so the
        // forward arc a+ -> b- is marked and the backward arc is not.
        assert_eq!(initial_tokens(Parity::Odd, true, Parity::Even, false), 1);
        assert_eq!(initial_tokens(Parity::Even, false, Parity::Odd, true), 0);
        // Even (master, empty) -> odd (slave): the bubble means the backward
        // arc b- -> a+ carries the token instead.
        assert_eq!(initial_tokens(Parity::Even, true, Parity::Odd, false), 0);
        assert_eq!(initial_tokens(Parity::Odd, false, Parity::Even, true), 1);
        // Local controller cycle: the return arc x- -> x+ is marked.
        assert_eq!(initial_tokens(Parity::Even, false, Parity::Even, true), 1);
        assert_eq!(initial_tokens(Parity::Even, true, Parity::Even, false), 0);
    }

    #[test]
    fn controller_generation_produces_valid_overhead_netlist() {
        let mut n = Netlist::new("overhead");
        let a =
            ControllerImpl::generate(&mut n, "stage0", Parity::Even, Protocol::FullyDecoupled, 16)
                .unwrap();
        let b =
            ControllerImpl::generate(&mut n, "stage0", Parity::Odd, Protocol::FullyDecoupled, 16)
                .unwrap();
        let c =
            ControllerImpl::generate(&mut n, "stage1", Parity::Even, Protocol::NonOverlapping, 40)
                .unwrap();
        assert!(n.validate().is_ok());
        assert!(a.num_cells() > 3 + 4);
        assert_eq!(a.parity, Parity::Even);
        assert_ne!(a.enable_net, b.enable_net);
        // Larger clusters need more enable buffers.
        assert!(c.cells.iter().filter(|c| c.contains("buf")).count() >= 4);
        // Non-overlapping controllers are smaller than fully-decoupled ones.
        assert!(c.num_cells() < a.num_cells());
        // All cells carry the ctl_ prefix for area accounting.
        assert!(n
            .cells()
            .all(|(_, cell)| cell.name.as_str().starts_with("ctl_")));
    }
}
