//! Step 1 of the flow: conversion of the flip-flop based netlist into a
//! latch-based one (paper Figure 1(a) → 1(b)).
//!
//! Every rising-edge D flip-flop is decomposed into a *master* latch
//! followed by a *slave* latch. Two conversions are provided:
//!
//! * [`to_latch_synchronous`] — the intermediate latch-based **synchronous**
//!   circuit: the master is transparent while the clock is low, the slave
//!   while it is high, both still driven by the global clock. This circuit
//!   is cycle-accurate equivalent to the original and is only used as a
//!   stepping stone / demonstration (Figure 1(b)).
//! * [`to_desynchronized_datapath`] — the **desynchronized** datapath: both
//!   latches become transparent-high and their enables are exported as
//!   primary inputs, one pair per cluster, to be driven by the local
//!   handshake controllers (or, in simulation, by the timed marked-graph
//!   model of the control network).

use crate::cluster::ClusterGraph;
use crate::error::DesyncError;
use desync_netlist::{CellId, NetId, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The master/slave latch pair created from one flip-flop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatchPair {
    /// The original flip-flop (cell id in the *original* netlist).
    pub register: CellId,
    /// Instance name of the original flip-flop.
    pub register_name: String,
    /// Instance name of the master (even) latch in the converted netlist.
    pub master: String,
    /// Instance name of the slave (odd) latch in the converted netlist.
    pub slave: String,
    /// Index of the cluster the pair belongs to.
    pub cluster: usize,
}

/// The result of converting a flip-flop netlist into a desynchronized
/// latch-based datapath.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatchDesign {
    /// The latch-based datapath. Latch enables are primary inputs named
    /// `en_<cluster>_m` / `en_<cluster>_s`.
    pub netlist: Netlist,
    /// One entry per original flip-flop.
    pub pairs: Vec<LatchPair>,
    /// Per cluster: `(cluster_name, master_enable_net, slave_enable_net)`,
    /// indexed like [`ClusterGraph::clusters`].
    pub cluster_enables: Vec<(String, String, String)>,
}

impl LatchDesign {
    /// The enable net ids of cluster `idx` as `(master, slave)`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn enable_nets(&self, idx: usize) -> (NetId, NetId) {
        let (_, m, s) = &self.cluster_enables[idx];
        (
            self.netlist.find_net(m).expect("master enable net exists"),
            self.netlist.find_net(s).expect("slave enable net exists"),
        )
    }

    /// The master latch instance name corresponding to an original
    /// flip-flop instance name, if that flip-flop was converted.
    pub fn master_of(&self, register_name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|p| p.register_name == register_name)
            .map(|p| p.master.as_str())
    }

    /// Number of latch pairs (original flip-flops).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }
}

impl crate::store::Weigh for LatchDesign {
    /// Weight: the dominant retained memory is the converted netlist (cells
    /// and nets), plus one unit per latch pair and cluster-enable record.
    fn weight(&self) -> usize {
        self.netlist.num_cells()
            + self.netlist.num_nets()
            + self.pairs.len()
            + self.cluster_enables.len()
    }
}

/// Copies nets (with identical ids), primary inputs (optionally without the
/// clock) and outputs, plus all combinational cells of `source` into a new
/// netlist.
fn copy_combinational_skeleton(source: &Netlist, name: &str, skip_input: Option<NetId>) -> Netlist {
    let mut out = Netlist::new(name.to_string());
    for (_, net) in source.nets() {
        out.add_net(net.name);
    }
    for &input in source.inputs() {
        if Some(input) != skip_input {
            out.mark_input(input);
        }
    }
    for &output in source.outputs() {
        out.mark_output(output);
    }
    for (_, cell) in source.cells() {
        if cell.kind.is_combinational() {
            out.add_cell(cell.clone())
                .expect("copying a valid cell cannot fail");
        }
    }
    out
}

/// Converts a flip-flop netlist into the latch-based **synchronous** circuit
/// of paper Figure 1(b): master latches transparent when the clock is low,
/// slave latches transparent when it is high, both driven by the original
/// clock net.
///
/// # Errors
///
/// * [`DesyncError::NoRegisters`] if the netlist has no flip-flops.
/// * [`DesyncError::AlreadyLatchBased`] if it already contains latches.
/// * [`DesyncError::Netlist`] if the input is structurally invalid.
pub fn to_latch_synchronous(source: &Netlist) -> Result<Netlist, DesyncError> {
    check_input(source)?;
    let clk = source.single_clock().map_err(DesyncError::Netlist)?;
    let mut out = copy_combinational_skeleton(source, &format!("{}_latched", source.name()), None);
    for (_, cell) in source.flip_flops() {
        let d = cell.inputs[0];
        let q = cell.output;
        let mid = out.add_net(format!("{}__mq", cell.name));
        out.add_latch(format!("{}__m", cell.name), d, clk, mid, false)?;
        out.add_latch(format!("{}__s", cell.name), mid, clk, q, true)?;
    }
    Ok(out)
}

/// Converts a flip-flop netlist into the **desynchronized** latch-based
/// datapath: both latches are transparent-high and their enables are primary
/// inputs, one `(master, slave)` pair per cluster of `clusters`.
///
/// The global clock input disappears from the datapath — this is precisely
/// the point of the method.
///
/// # Errors
///
/// Same conditions as [`to_latch_synchronous`].
pub fn to_desynchronized_datapath(
    source: &Netlist,
    clusters: &ClusterGraph,
) -> Result<LatchDesign, DesyncError> {
    check_input(source)?;
    let clk = source.single_clock().map_err(DesyncError::Netlist)?;
    let mut netlist =
        copy_combinational_skeleton(source, &format!("{}_desync", source.name()), Some(clk));

    // One enable-net pair per cluster, exported as primary inputs.
    let mut cluster_enables = Vec::with_capacity(clusters.len());
    let mut enables: Vec<(NetId, NetId)> = Vec::with_capacity(clusters.len());
    for cluster in &clusters.clusters {
        let m = netlist.add_input(format!("en_{}_m", cluster.name));
        let s = netlist.add_input(format!("en_{}_s", cluster.name));
        cluster_enables.push((
            cluster.name.clone(),
            netlist.net(m).name.to_string(),
            netlist.net(s).name.to_string(),
        ));
        enables.push((m, s));
    }
    let cluster_of: HashMap<CellId, usize> = clusters
        .clusters
        .iter()
        .enumerate()
        .flat_map(|(i, c)| c.registers.iter().map(move |&r| (r, i)))
        .collect();

    let mut pairs = Vec::new();
    for (id, cell) in source.flip_flops() {
        let Some(&cluster) = cluster_of.get(&id) else {
            return Err(DesyncError::ModelCheck(format!(
                "flip-flop `{}` is not covered by any cluster",
                cell.name
            )));
        };
        let (en_m, en_s) = enables[cluster];
        let d = cell.inputs[0];
        let q = cell.output;
        let mid = netlist.add_net(format!("{}__mq", cell.name));
        let master = format!("{}__m", cell.name);
        let slave = format!("{}__s", cell.name);
        netlist.add_latch(&master, d, en_m, mid, true)?;
        netlist.add_latch(&slave, mid, en_s, q, true)?;
        pairs.push(LatchPair {
            register: id,
            register_name: cell.name.to_string(),
            master,
            slave,
            cluster,
        });
    }
    Ok(LatchDesign {
        netlist,
        pairs,
        cluster_enables,
    })
}

fn check_input(source: &Netlist) -> Result<(), DesyncError> {
    source.validate().map_err(DesyncError::Netlist)?;
    if source.num_latches() > 0 {
        return Err(DesyncError::AlreadyLatchBased);
    }
    if source.num_flip_flops() == 0 {
        return Err(DesyncError::NoRegisters);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ClusteringStrategy;
    use desync_netlist::CellKind;

    fn pipeline2() -> Netlist {
        let mut n = Netlist::new("pipe");
        let clk = n.add_input("clk");
        let a = n.add_input("a");
        let q0 = n.add_net("q0");
        let w = n.add_net("w");
        let q1 = n.add_output("q1");
        n.add_dff("r0", a, clk, q0).unwrap();
        n.add_gate("g0", CellKind::Not, &[q0], w).unwrap();
        n.add_dff("r1", w, clk, q1).unwrap();
        n
    }

    #[test]
    fn latch_synchronous_doubles_registers() {
        let n = pipeline2();
        let latched = to_latch_synchronous(&n).unwrap();
        assert!(latched.validate().is_ok());
        assert_eq!(latched.num_latches(), 2 * n.num_flip_flops());
        assert_eq!(latched.num_flip_flops(), 0);
        assert_eq!(latched.num_combinational(), n.num_combinational());
        // Master is transparent-low, slave transparent-high (Figure 1(b)).
        let m = latched.find_cell("r0__m").unwrap();
        let s = latched.find_cell("r0__s").unwrap();
        assert_eq!(latched.cell(m).kind, CellKind::LatchLow);
        assert_eq!(latched.cell(s).kind, CellKind::LatchHigh);
        // Both still clocked by the original clock net.
        let clk = latched.find_net("clk").unwrap();
        assert_eq!(latched.cell(m).enable_net(), Some(clk));
        assert_eq!(latched.cell(s).enable_net(), Some(clk));
    }

    #[test]
    fn desynchronized_datapath_has_no_clock_and_exports_enables() {
        let n = pipeline2();
        let clusters = ClusterGraph::build(&n, ClusteringStrategy::PerRegister);
        let design = to_desynchronized_datapath(&n, &clusters).unwrap();
        assert!(design.netlist.validate().is_ok());
        assert_eq!(design.num_pairs(), 2);
        assert_eq!(design.netlist.num_latches(), 4);
        // The clock net is no longer a primary input.
        let clk = design.netlist.find_net("clk").unwrap();
        assert!(!design.netlist.inputs().contains(&clk));
        // Two enable inputs per cluster.
        assert_eq!(design.cluster_enables.len(), 2);
        let (m, s) = design.enable_nets(0);
        assert!(design.netlist.inputs().contains(&m));
        assert!(design.netlist.inputs().contains(&s));
        // Both latches are transparent-high in the desynchronized datapath.
        let master = design.netlist.find_cell("r0__m").unwrap();
        assert_eq!(design.netlist.cell(master).kind, CellKind::LatchHigh);
        assert_eq!(design.master_of("r0"), Some("r0__m"));
        assert_eq!(design.master_of("nope"), None);
    }

    #[test]
    fn original_net_ids_are_preserved() {
        let n = pipeline2();
        let clusters = ClusterGraph::build(&n, ClusteringStrategy::ByNamePrefix);
        let design = to_desynchronized_datapath(&n, &clusters).unwrap();
        for (id, net) in n.nets() {
            assert_eq!(design.netlist.net(id).name, net.name);
        }
    }

    #[test]
    fn conversion_rejects_bad_inputs() {
        // No registers.
        let mut comb = Netlist::new("comb");
        let a = comb.add_input("a");
        let y = comb.add_output("y");
        comb.add_gate("g", CellKind::Not, &[a], y).unwrap();
        assert_eq!(
            to_latch_synchronous(&comb).unwrap_err(),
            DesyncError::NoRegisters
        );
        // Already latch based.
        let mut lat = Netlist::new("lat");
        let en = lat.add_input("en");
        let d = lat.add_input("d");
        let q = lat.add_output("q");
        lat.add_latch("l", d, en, q, true).unwrap();
        assert_eq!(
            to_latch_synchronous(&lat).unwrap_err(),
            DesyncError::AlreadyLatchBased
        );
        // Structurally invalid netlist.
        let mut bad = Netlist::new("bad");
        let x = bad.add_net("x");
        let clk = bad.add_input("clk");
        let q2 = bad.add_output("q2");
        bad.add_dff("r", x, clk, q2).unwrap();
        assert!(matches!(
            to_latch_synchronous(&bad).unwrap_err(),
            DesyncError::Netlist(_)
        ));
    }

    #[test]
    fn prefix_clustering_shares_enables() {
        let mut n = Netlist::new("bank");
        let clk = n.add_input("clk");
        let a0 = n.add_input("a0");
        let a1 = n.add_input("a1");
        let q0 = n.add_output("q0");
        let q1 = n.add_output("q1");
        n.add_dff("bank_ff[0]", a0, clk, q0).unwrap();
        n.add_dff("bank_ff[1]", a1, clk, q1).unwrap();
        let clusters = ClusterGraph::build(&n, ClusteringStrategy::ByNamePrefix);
        assert_eq!(clusters.len(), 1);
        let design = to_desynchronized_datapath(&n, &clusters).unwrap();
        // Both master latches share the same enable net.
        let m0 = design.netlist.find_cell("bank_ff[0]__m").unwrap();
        let m1 = design.netlist.find_cell("bank_ff[1]__m").unwrap();
        assert_eq!(
            design.netlist.cell(m0).enable_net(),
            design.netlist.cell(m1).enable_net()
        );
    }
}
