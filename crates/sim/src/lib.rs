//! Event-driven gate-level simulation for synchronous and desynchronized
//! netlists.
//!
//! The simulator plays the role of the gate-level simulation with
//! back-annotated delays used in the paper's evaluation: it executes a
//! [`Netlist`](desync_netlist::Netlist) with per-cell propagation delays,
//! counts switching activity (the input to the dynamic-power model in
//! `desync-power`) and records the stream of values captured by every
//! register (the input to the flow-equivalence check in `desync-mg`).
//!
//! Two harnesses are provided on top of the raw engine:
//!
//! * [`SyncTestbench`] — drives a global clock and per-cycle input vectors
//!   into a flip-flop based netlist.
//! * [`AsyncTestbench`] — drives a latch-based (desynchronized) netlist
//!   whose latch-enable waveforms come from the timed marked-graph model of
//!   the control network.
//!
//! # Two kernels: scalar golden reference, packed throughput
//!
//! The crate ships a *pair* of kernels over one shared [`CompiledModel`]:
//!
//! * **[`EventSimulator`]** — the scalar kernel; one 4-state [`Value`] per
//!   net per run. It is the golden reference: every other execution mode is
//!   defined (and property-tested) as bit-identical to it.
//! * **[`PackedSimulator`]** — the bit-parallel kernel; each net carries a
//!   [`PackedValue`] of 64 independent stimulus lanes encoded as two `u64`
//!   bit-planes (`lo` = definitely-One, `hi` = possibly-One, so
//!   `Zero = 00`, `One = 11`, `X = 01` per lane). Every [`CellKind`] is
//!   evaluated with branch-free word-wide logic — NOT swaps and complements
//!   the planes, AND/OR are per-plane `&`/`|`, and the rest compose from
//!   plane masks. Under matched delays the event *schedule* is
//!   stimulus-independent, so the calendar queue, the CSR topology walk and
//!   the scheduling rules are byte-for-byte the scalar kernel's — only the
//!   payloads widen. Per-lane extraction ([`PackedSimRun`]) returns
//!   captures, activity and waveforms bit-identical to 64 scalar runs at
//!   roughly the cost of one, which is what makes 64-seed equivalence
//!   campaigns ~1× the price of a single-seed verification.
//!
//! [`PackedSyncTestbench`] / [`PackedAsyncTestbench`] mirror the scalar
//! harnesses' drive scripts exactly (control nets are broadcast across
//! lanes), and [`PackedVectorSource`] interleaves up to 64 scalar
//! [`VectorSource`] lanes with a combined content digest for the
//! sync-reference-run cache.
//!
//! [`Value`]: desync_netlist::Value
//! [`CellKind`]: desync_netlist::CellKind
//!
//! # Kernel design: compiled model + cursor
//!
//! Gate-level co-simulation is the hot path of flow-equivalence
//! verification (every knob sweep ends in two simulations), so the kernel
//! splits what is *shareable* from what is *per-run* and commits events
//! without allocating:
//!
//! * **[`CompiledModel`]** holds everything derived from the netlist
//!   structure and the library — the CSR-flattened topology (reader map,
//!   per-cell pin lists), per-cell delays, constant-driver seeds and the
//!   register list. It is a pure function of `(netlist, library,
//!   [`SimConfig`])`, compiled once by [`CompiledModel::compile`] and
//!   shared behind an `Arc`.
//! * **[`EventSimulator`]** is a cheap *cursor* over a compiled model
//!   ([`EventSimulator::with_model`]): it owns only the per-run mutable
//!   state (net values, the pending-event queue, activity counters,
//!   captures, the watch list). A verification sweep therefore compiles
//!   each datapath once and re-binds per-point enable schedules and
//!   stimuli onto the shared model; `desync-core` caches compiled models
//!   in its artifact store next to the stage artifacts.
//! * Events are ordered by **integer time keys** (the IEEE-754 bit pattern
//!   of the non-negative f64 picosecond time — order-isomorphic to the
//!   numeric value, so the order is total and results stay bit-identical to
//!   an f64 kernel); non-finite times are rejected at the
//!   [`EventSimulator::schedule`] boundary.
//! * The pending-event set is a **bucketed calendar queue** with a binary
//!   heap overflow tier for far-future events (up-front enable schedules).
//! * Input values are gathered into one reused scratch buffer, and
//!   flip-flops are not registered as readers of their data nets (they
//!   only react to clock edges).
//! * Watched nets are a **bitset**, waveforms are recorded per [`NetId`]
//!   and names are resolved once at export
//!   ([`EventSimulator::waveforms`]), and capture streams are grouped per
//!   register before any name is cloned.
//!
//! Both harnesses take either a `(library, config)` pair or a pre-compiled
//! model ([`SyncTestbench::with_model`], [`AsyncTestbench::with_model`]);
//! the two paths are bit-identical by construction — the cursor seeds
//! constants in the same order the monolithic constructor did, so event
//! sequence numbers (the tie-breakers of the total event order) coincide.
//!
//! A golden-trace property suite (`desync-core/tests/sim_golden.rs`) pins
//! the scalar kernel's captures, activity counters and waveforms
//! byte-identical to a straightforward reference implementation across
//! random circuits and all three handshake protocols; a second suite
//! (`desync-core/tests/sim_packed_golden.rs`) pins the packed kernel's
//! plane-extracted lanes bit-identical to scalar runs the same way.
//! [`VectorSource::content_digest`] provides the stimulus half of the
//! content-addressed sync-reference-run cache that `desync-core` layers on
//! top for incremental co-simulation.
//!
//! # Example
//!
//! ```
//! use desync_netlist::{Netlist, CellKind, CellLibrary};
//! use desync_sim::{SimConfig, SyncTestbench, VectorSource};
//!
//! # fn main() -> Result<(), desync_netlist::NetlistError> {
//! let mut n = Netlist::new("counter_bit");
//! let clk = n.add_input("clk");
//! let q = n.add_net("q");
//! let d = n.add_net("d");
//! n.add_gate("inv", CellKind::Not, &[q], d)?;
//! n.add_dff("r", d, clk, q)?;
//! n.mark_output(q);
//!
//! let lib = CellLibrary::generic_90nm();
//! let mut tb = SyncTestbench::new(&n, &lib, SimConfig::default())?;
//! let run = tb.run(16, 5_000.0, &mut VectorSource::constant(vec![]));
//! assert_eq!(run.cycles, 16);
//! // The single register toggles every cycle.
//! let stream = run.flow_trace.stream("r").unwrap();
//! assert!(stream.windows(2).all(|w| w[0] != w[1]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod engine;
pub mod harness;
pub mod model;
pub mod packed;
pub mod stimulus;
pub mod waveform;

pub use activity::Activity;
pub use engine::{EventSimulator, SimConfig};
pub use harness::{AsyncTestbench, EnableSchedule, SimRun, SyncTestbench};
pub use model::CompiledModel;
pub use packed::{
    PackedAsyncTestbench, PackedCapture, PackedSimRun, PackedSimulator, PackedSyncTestbench,
    PackedValue, MAX_LANES,
};
pub use stimulus::{PackedVectorSource, VectorSource};
pub use waveform::{Waveform, WaveformSet};
