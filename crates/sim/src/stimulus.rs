//! Input-vector generation for the simulation harnesses.

use crate::packed::{PackedValue, MAX_LANES};
use desync_netlist::{NetId, Value};
use serde::{Deserialize, Serialize};

/// A source of per-cycle input vectors.
///
/// Each call to [`VectorSource::vector_for`] yields the assignments to apply
/// for one clock cycle (or one handshake iteration in the asynchronous
/// harness). Three flavours are provided:
///
/// * [`VectorSource::constant`] — the same assignments every cycle,
/// * [`VectorSource::sequence`] — a list of vectors applied in order and
///   repeated cyclically,
/// * [`VectorSource::pseudo_random`] — a deterministic xorshift-based stream
///   over a set of nets, reproducible from its seed (no external RNG crate
///   needed in release builds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorSource {
    kind: SourceKind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum SourceKind {
    Constant(Vec<(NetId, Value)>),
    Sequence(Vec<Vec<(NetId, Value)>>),
    PseudoRandom { nets: Vec<NetId>, seed: u64 },
}

impl VectorSource {
    /// The same assignments every cycle (possibly empty).
    pub fn constant(assignments: Vec<(NetId, Value)>) -> Self {
        Self {
            kind: SourceKind::Constant(assignments),
        }
    }

    /// A fixed list of vectors, repeated cyclically.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is empty — use [`VectorSource::constant`] with an
    /// empty vector for "no stimulus".
    pub fn sequence(vectors: Vec<Vec<(NetId, Value)>>) -> Self {
        assert!(
            !vectors.is_empty(),
            "sequence stimulus needs at least one vector"
        );
        Self {
            kind: SourceKind::Sequence(vectors),
        }
    }

    /// A reproducible pseudo-random bit stream over `nets`, derived from
    /// `seed` with a 64-bit xorshift generator.
    pub fn pseudo_random(nets: Vec<NetId>, seed: u64) -> Self {
        Self {
            kind: SourceKind::PseudoRandom {
                nets,
                seed: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
            },
        }
    }

    /// The assignments for cycle `cycle` (0-based).
    pub fn vector_for(&self, cycle: usize) -> Vec<(NetId, Value)> {
        match &self.kind {
            SourceKind::Constant(v) => v.clone(),
            SourceKind::Sequence(vs) => vs[cycle % vs.len()].clone(),
            SourceKind::PseudoRandom { nets, seed } => {
                let mut state = seed ^ (cycle as u64).wrapping_mul(0xA24BAED4963EE407);
                nets.iter()
                    .map(|&n| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        (n, Value::from_bool(state & 1 == 1))
                    })
                    .collect()
            }
        }
    }

    /// The nets this source drives (on the first cycle, which is
    /// representative for all three flavours).
    pub fn driven_nets(&self) -> Vec<NetId> {
        self.vector_for(0).into_iter().map(|(n, _)| n).collect()
    }

    /// A stable 64-bit content digest of the stimulus.
    ///
    /// Two sources with equal digests produce the same vector stream with
    /// overwhelming probability (FNV-1a over the flavour tag and the full
    /// payload — assignments, vector lists, or net set plus seed). The
    /// digest is stable across processes and platforms, making it usable as
    /// the stimulus half of content-addressed simulation caches (the
    /// sync-reference-run cache in `desync-core` keys on it).
    pub fn content_digest(&self) -> u64 {
        let mut hash = desync_netlist::Fnv1a::new();
        let write_assignment = |hash: &mut desync_netlist::Fnv1a, net: NetId, value: Value| {
            hash.write_u32(net.0);
            hash.write_u8(match value {
                Value::Zero => 0u8,
                Value::One => 1,
                Value::X => 2,
            });
        };
        match &self.kind {
            SourceKind::Constant(assignments) => {
                hash.write_u8(1);
                hash.write_usize(assignments.len());
                for &(net, value) in assignments {
                    write_assignment(&mut hash, net, value);
                }
            }
            SourceKind::Sequence(vectors) => {
                hash.write_u8(2);
                hash.write_usize(vectors.len());
                for vector in vectors {
                    hash.write_usize(vector.len());
                    for &(net, value) in vector {
                        write_assignment(&mut hash, net, value);
                    }
                }
            }
            SourceKind::PseudoRandom { nets, seed } => {
                hash.write_u8(3);
                hash.write_usize(nets.len());
                for net in nets {
                    hash.write_u32(net.0);
                }
                hash.write_u64(*seed);
            }
        }
        hash.finish()
    }
}

/// Up to 64 interleaved [`VectorSource`] lanes driving one packed run.
///
/// Every lane must drive the same nets in the same per-cycle order (the
/// packed harness asserts this), because the packed kernel widens the
/// *payloads* of a shared event schedule — it cannot give different lanes
/// different event times. Unused tail lanes replicate the last live lane,
/// so they never create events the live lanes would not have created.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedVectorSource {
    lanes: Vec<VectorSource>,
}

impl PackedVectorSource {
    /// Interleaves `lanes` sources into one packed source.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty or holds more than 64 sources.
    pub fn interleave(lanes: Vec<VectorSource>) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes.len()),
            "packed stimulus carries 1..=64 lanes, got {}",
            lanes.len()
        );
        Self { lanes }
    }

    /// One pseudo-random lane per seed over the same `nets` — the standard
    /// multi-seed equivalence-campaign stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty or holds more than 64 seeds.
    pub fn pseudo_random(nets: Vec<NetId>, seeds: &[u64]) -> Self {
        Self::interleave(
            seeds
                .iter()
                .map(|&seed| VectorSource::pseudo_random(nets.clone(), seed))
                .collect(),
        )
    }

    /// Number of live lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The scalar source of lane `lane`.
    pub fn lane(&self, lane: usize) -> &VectorSource {
        &self.lanes[lane]
    }

    /// All lane sources in lane order.
    pub fn lane_sources(&self) -> &[VectorSource] {
        &self.lanes
    }

    /// The nets this source drives (identical for every lane).
    pub fn driven_nets(&self) -> Vec<NetId> {
        self.lanes[0].driven_nets()
    }

    /// The packed assignments for cycle `cycle`: each lane's scalar vector
    /// widened into per-net [`PackedValue`]s, with tail lanes replicating
    /// the last live lane.
    ///
    /// # Panics
    ///
    /// Panics if the lanes disagree on the driven nets or their order.
    pub fn packed_vector_for(&self, cycle: usize) -> Vec<(NetId, PackedValue)> {
        let vectors: Vec<Vec<(NetId, Value)>> = self
            .lanes
            .iter()
            .map(|lane| lane.vector_for(cycle))
            .collect();
        let template = &vectors[0];
        for vector in &vectors[1..] {
            assert_eq!(
                vector.len(),
                template.len(),
                "every packed stimulus lane must drive the same nets"
            );
        }
        let last = vectors.len() - 1;
        template
            .iter()
            .enumerate()
            .map(|(slot, &(net, _))| {
                let mut packed = PackedValue::all_x();
                for lane in 0..MAX_LANES {
                    let (lane_net, value) = vectors[lane.min(last)][slot];
                    assert_eq!(
                        lane_net, net,
                        "every packed stimulus lane must drive the same nets in the same order"
                    );
                    packed.set_lane(lane, value);
                }
                (net, packed)
            })
            .collect()
    }

    /// A stable 64-bit content digest of the packed stimulus: the packed
    /// flavour tag, the lane count, and every lane's
    /// [`VectorSource::content_digest`], in order. Keys the packed half of
    /// the content-addressed sync-reference-run cache in `desync-core`.
    pub fn content_digest(&self) -> u64 {
        let mut hash = desync_netlist::Fnv1a::new();
        hash.write_u8(4);
        hash.write_usize(self.lanes.len());
        for lane in &self.lanes {
            hash.write_u64(lane.content_digest());
        }
        hash.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_repeats() {
        let s = VectorSource::constant(vec![(NetId(3), Value::One)]);
        assert_eq!(s.vector_for(0), s.vector_for(17));
        assert_eq!(s.driven_nets(), vec![NetId(3)]);
    }

    #[test]
    fn sequence_cycles() {
        let s = VectorSource::sequence(vec![
            vec![(NetId(0), Value::Zero)],
            vec![(NetId(0), Value::One)],
        ]);
        assert_eq!(s.vector_for(0), s.vector_for(2));
        assert_ne!(s.vector_for(0), s.vector_for(1));
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn empty_sequence_panics() {
        let _ = VectorSource::sequence(vec![]);
    }

    #[test]
    fn content_digest_separates_sources_and_is_stable() {
        let constant = VectorSource::constant(vec![(NetId(3), Value::One)]);
        assert_eq!(constant.content_digest(), constant.content_digest());
        // Each knob of each flavour moves the digest.
        let other_net = VectorSource::constant(vec![(NetId(4), Value::One)]);
        let other_value = VectorSource::constant(vec![(NetId(3), Value::Zero)]);
        let empty = VectorSource::constant(vec![]);
        let sequence = VectorSource::sequence(vec![vec![(NetId(3), Value::One)]]);
        let random_a = VectorSource::pseudo_random(vec![NetId(3)], 1);
        let random_b = VectorSource::pseudo_random(vec![NetId(3)], 2);
        let digests = [
            constant.content_digest(),
            other_net.content_digest(),
            other_value.content_digest(),
            empty.content_digest(),
            sequence.content_digest(),
            random_a.content_digest(),
            random_b.content_digest(),
        ];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // A one-vector sequence and an equal constant differ (different
        // flavour tags), even though they stream identical vectors; the
        // digest over-approximates inequality, never equality.
        assert_ne!(constant.content_digest(), sequence.content_digest());
        // Stability across processes: the digest is a fixed function with
        // pinned constants, so pin one value as a regression anchor.
        assert_eq!(empty.content_digest(), 0x529a_2cdc_8ff5_33ac);
    }

    #[test]
    fn packed_source_interleaves_lanes_and_replicates_the_tail() {
        let nets = vec![NetId(0), NetId(1)];
        let packed = PackedVectorSource::pseudo_random(nets.clone(), &[7, 11, 13]);
        assert_eq!(packed.lanes(), 3);
        assert_eq!(packed.driven_nets(), nets);
        for cycle in 0..8 {
            let vector = packed.packed_vector_for(cycle);
            assert_eq!(vector.len(), nets.len());
            for (slot, &(net, value)) in vector.iter().enumerate() {
                assert_eq!(net, nets[slot]);
                for (lane, source) in packed.lane_sources().iter().enumerate() {
                    assert_eq!(value.lane(lane), source.vector_for(cycle)[slot].1);
                }
                // Tail lanes replicate the last live lane.
                for lane in packed.lanes()..MAX_LANES {
                    assert_eq!(value.lane(lane), packed.lane(2).vector_for(cycle)[slot].1);
                }
            }
        }
    }

    #[test]
    fn packed_digest_separates_lane_order_count_and_flavour() {
        let a = VectorSource::pseudo_random(vec![NetId(0)], 1);
        let b = VectorSource::pseudo_random(vec![NetId(0)], 2);
        let ab = PackedVectorSource::interleave(vec![a.clone(), b.clone()]);
        let ba = PackedVectorSource::interleave(vec![b.clone(), a.clone()]);
        let aa = PackedVectorSource::interleave(vec![a.clone(), a.clone()]);
        let single = PackedVectorSource::interleave(vec![a.clone()]);
        assert_eq!(ab.content_digest(), ab.content_digest());
        assert_ne!(ab.content_digest(), ba.content_digest());
        assert_ne!(ab.content_digest(), aa.content_digest());
        assert_ne!(single.content_digest(), a.content_digest());
    }

    #[test]
    #[should_panic(expected = "1..=64 lanes")]
    fn empty_packed_source_panics() {
        let _ = PackedVectorSource::interleave(vec![]);
    }

    #[test]
    #[should_panic(expected = "same nets")]
    fn mismatched_lane_nets_panic() {
        let packed = PackedVectorSource::interleave(vec![
            VectorSource::constant(vec![(NetId(0), Value::One)]),
            VectorSource::constant(vec![(NetId(1), Value::One)]),
        ]);
        let _ = packed.packed_vector_for(0);
    }

    #[test]
    fn pseudo_random_is_deterministic_and_varied() {
        let nets = vec![NetId(0), NetId(1), NetId(2), NetId(3)];
        let a = VectorSource::pseudo_random(nets.clone(), 42);
        let b = VectorSource::pseudo_random(nets.clone(), 42);
        for cycle in 0..32 {
            assert_eq!(a.vector_for(cycle), b.vector_for(cycle));
        }
        // Different seeds eventually differ.
        let c = VectorSource::pseudo_random(nets, 43);
        assert!((0..32).any(|i| a.vector_for(i) != c.vector_for(i)));
        // Zero seed is remapped to something non-degenerate.
        let z = VectorSource::pseudo_random(vec![NetId(0)], 0);
        let values: Vec<Value> = (0..64).map(|i| z.vector_for(i)[0].1).collect();
        assert!(values.contains(&Value::Zero) && values.contains(&Value::One));
    }
}
