//! The compiled simulation model: everything about a netlist's structure
//! that every simulation run shares.
//!
//! Building an [`EventSimulator`](crate::EventSimulator) used to re-derive
//! the whole flattened topology — fan-out counts, per-cell delays, the CSR
//! reader map and pin lists, the constant-driver seeds — on every
//! construction, even though none of it depends on the stimulus, the enable
//! schedule or the run length. For a verification sweep that simulates the
//! same latch netlist once per protocol × margin point, that rebuild is
//! pure waste.
//!
//! [`CompiledModel`] captures exactly the shareable half: it is a pure
//! function of `(netlist, library, SimConfig)`, immutable after
//! [`CompiledModel::compile`], and cheap to share behind an `Arc`. An
//! [`EventSimulator`](crate::EventSimulator) is then a *cursor* over the
//! model — per-run mutable state only (net values, the calendar queue,
//! activity counters, captures, watch list) — so sweep points re-bind their
//! schedules and inputs onto one compiled model instead of recompiling it.
//! `desync-core` caches compiled models in its artifact store keyed by the
//! netlist identity and the `SimConfig` bits.

use crate::engine::SimConfig;
use desync_netlist::{CellId, CellKind, CellLibrary, NetId, Netlist, Value};

/// The immutable, shareable half of a simulation: flattened topology and
/// per-cell delays for one `(netlist, library, config)` triple.
///
/// See the [module documentation](self). All fields are derived; two models
/// compiled from equal inputs are equal.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    pub(crate) config: SimConfig,
    pub(crate) num_nets: usize,
    /// CSR net → reader cells: readers of net `n` are
    /// `reader_cells[reader_offsets[n]..reader_offsets[n + 1]]`.
    pub(crate) reader_offsets: Vec<u32>,
    pub(crate) reader_cells: Vec<CellId>,
    /// Flattened cell metadata (kind, output, input CSR), so the hot path
    /// never chases the netlist's per-cell `Vec<NetId>` pin lists.
    pub(crate) cell_kind: Vec<CellKind>,
    pub(crate) cell_output: Vec<NetId>,
    pub(crate) input_offsets: Vec<u32>,
    pub(crate) input_nets: Vec<NetId>,
    pub(crate) cell_delay: Vec<f64>,
    /// Constant drivers have no inputs, so nothing would ever trigger their
    /// evaluation; every fresh cursor seeds these outputs at time zero, in
    /// netlist cell order (the order matters: it fixes the event sequence
    /// numbers, keeping cursor runs bit-identical to the old constructor).
    pub(crate) const_seeds: Vec<(NetId, Value)>,
    /// Output nets of all sequential cells (flip-flops and latches), in
    /// netlist cell order, for
    /// [`EventSimulator::initialize_registers`](crate::EventSimulator::initialize_registers).
    pub(crate) register_outputs: Vec<NetId>,
}

impl CompiledModel {
    /// Compiles `netlist` against `library` under `config`.
    ///
    /// This performs every structure-dependent derivation the simulator
    /// needs — the result can drive any number of concurrent cursors.
    pub fn compile(netlist: &Netlist, library: &CellLibrary, config: SimConfig) -> Self {
        let fanout = netlist.fanout_map();
        let num_nets = netlist.num_nets();
        let num_cells = netlist.num_cells();

        let mut cell_kind = Vec::with_capacity(num_cells);
        let mut cell_output = Vec::with_capacity(num_cells);
        let mut cell_delay = Vec::with_capacity(num_cells);
        let mut input_offsets = Vec::with_capacity(num_cells + 1);
        let mut input_nets = Vec::new();
        let mut const_seeds = Vec::new();
        let mut register_outputs = Vec::new();
        input_offsets.push(0u32);
        for (_, c) in netlist.cells() {
            let fo = fanout[c.output.index()].max(1);
            let base = match c.kind {
                CellKind::Dff => config.clk_to_q_ps,
                CellKind::LatchLow | CellKind::LatchHigh => config.latch_d_to_q_ps,
                _ => library
                    .template(c.kind)
                    .instance_delay_ps(c.inputs.len().max(1), fo),
            };
            cell_kind.push(c.kind);
            cell_output.push(c.output);
            cell_delay.push(base + config.wire_delay_per_fanout_ps * fo as f64);
            input_nets.extend_from_slice(&c.inputs);
            input_offsets.push(input_nets.len() as u32);
            match c.kind {
                CellKind::Const0 => const_seeds.push((c.output, Value::Zero)),
                CellKind::Const1 => const_seeds.push((c.output, Value::One)),
                CellKind::Dff | CellKind::LatchLow | CellKind::LatchHigh => {
                    register_outputs.push(c.output)
                }
                _ => {}
            }
        }

        // CSR reader map: count, prefix-sum, fill. A flip-flop only reacts
        // to its clock pin (the data pin is merely sampled at the edge), so
        // it is not registered as a reader of its data net — pruning the
        // no-op evaluation that every data-net commit would otherwise
        // trigger. (When data and clock share a net the reader must stay.)
        let reads = |kind: CellKind, inputs: &[NetId], position: usize| -> bool {
            !(kind == CellKind::Dff && position == 0 && inputs[0] != inputs[1])
        };
        let mut reader_offsets = vec![0u32; num_nets + 1];
        for (_, c) in netlist.cells() {
            for (position, &input) in c.inputs.iter().enumerate() {
                if reads(c.kind, &c.inputs, position) {
                    reader_offsets[input.index() + 1] += 1;
                }
            }
        }
        for i in 0..num_nets {
            reader_offsets[i + 1] += reader_offsets[i];
        }
        let mut reader_cells = vec![CellId(0); reader_offsets[num_nets] as usize];
        let mut fill = reader_offsets.clone();
        for (id, c) in netlist.cells() {
            for (position, &input) in c.inputs.iter().enumerate() {
                if reads(c.kind, &c.inputs, position) {
                    let slot = &mut fill[input.index()];
                    reader_cells[*slot as usize] = id;
                    *slot += 1;
                }
            }
        }

        Self {
            config,
            num_nets,
            reader_offsets,
            reader_cells,
            cell_kind,
            cell_output,
            input_offsets,
            input_nets,
            cell_delay,
            const_seeds,
            register_outputs,
        }
    }

    /// The configuration the model was compiled under.
    pub fn config(&self) -> SimConfig {
        self.config
    }

    /// Number of nets in the compiled netlist.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Number of cells in the compiled netlist.
    pub fn num_cells(&self) -> usize {
        self.cell_kind.len()
    }

    /// Approximate retained size in flat-array elements (the weight unit
    /// `desync-core`'s artifact store accounts compiled models in).
    pub fn footprint(&self) -> usize {
        self.reader_offsets.len()
            + self.reader_cells.len()
            + self.cell_kind.len()
            + self.cell_output.len()
            + self.input_offsets.len()
            + self.input_nets.len()
            + self.cell_delay.len()
            + self.const_seeds.len()
            + self.register_outputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellKind;

    #[test]
    fn compile_is_a_pure_function_of_its_inputs() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d = n.add_input("d");
        let q = n.add_output("q");
        let w = n.add_net("w");
        n.add_gate("g", CellKind::Not, &[d], w).unwrap();
        n.add_dff("r", w, clk, q).unwrap();
        let library = CellLibrary::generic_90nm();
        let a = CompiledModel::compile(&n, &library, SimConfig::default());
        let b = CompiledModel::compile(&n, &library, SimConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.num_nets(), n.num_nets());
        assert_eq!(a.num_cells(), n.num_cells());
        assert_eq!(a.register_outputs, vec![q]);
        assert!(a.const_seeds.is_empty());
        assert!(a.footprint() > 0);
    }

    #[test]
    fn constant_drivers_become_seeds() {
        let mut n = Netlist::new("t");
        let y = n.add_output("y");
        let z = n.add_output("z");
        n.add_gate("c1", CellKind::Const1, &[], y).unwrap();
        n.add_gate("c0", CellKind::Const0, &[], z).unwrap();
        let library = CellLibrary::generic_90nm();
        let model = CompiledModel::compile(&n, &library, SimConfig::default());
        assert_eq!(model.const_seeds, vec![(y, Value::One), (z, Value::Zero)]);
    }
}
