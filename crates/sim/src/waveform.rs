//! Waveform recording and a minimal VCD writer.

use desync_netlist::{NetId, Netlist, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The recorded value changes of a single net: `(time_ps, new_value)` pairs
/// in chronological order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Waveform {
    changes: Vec<(f64, Value)>,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a value change. Consecutive identical values are collapsed.
    pub fn push(&mut self, time_ps: f64, value: Value) {
        if let Some(&(_, last)) = self.changes.last() {
            if last == value {
                return;
            }
        }
        self.changes.push((time_ps, value));
    }

    /// The value of the net at `time_ps` (the most recent change at or
    /// before that time), or [`Value::X`] before the first change.
    pub fn value_at(&self, time_ps: f64) -> Value {
        let mut current = Value::X;
        for &(t, v) in &self.changes {
            if t > time_ps {
                break;
            }
            current = v;
        }
        current
    }

    /// All recorded changes.
    pub fn changes(&self) -> &[(f64, Value)] {
        &self.changes
    }

    /// Number of recorded changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The times at which the waveform switches to `value`.
    pub fn edges_to(&self, value: Value) -> Vec<f64> {
        self.changes
            .iter()
            .filter(|(_, v)| *v == value)
            .map(|&(t, _)| t)
            .collect()
    }

    /// Renders an ASCII strip (`_`, `#`, `x` per time step) between
    /// `start_ps` and `end_ps` with the given resolution. Intended for the
    /// figure-reproduction binaries (paper Figure 3 timing diagram).
    pub fn ascii(&self, start_ps: f64, end_ps: f64, step_ps: f64) -> String {
        let mut out = String::new();
        let mut t = start_ps;
        while t < end_ps {
            out.push(match self.value_at(t) {
                Value::Zero => '_',
                Value::One => '#',
                Value::X => 'x',
            });
            t += step_ps;
        }
        out
    }
}

/// A set of named waveforms recorded during one simulation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WaveformSet {
    waves: BTreeMap<String, Waveform>,
}

impl WaveformSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a change on the named signal.
    pub fn push(&mut self, name: &str, time_ps: f64, value: Value) {
        self.waves
            .entry(name.to_string())
            .or_default()
            .push(time_ps, value);
    }

    /// Inserts a fully recorded waveform under `name`, replacing any
    /// previous one. Used by the simulator's export path, which records
    /// waveforms by net id during the run and resolves names only once at
    /// the end.
    pub fn insert(&mut self, name: String, waveform: Waveform) {
        self.waves.insert(name, waveform);
    }

    /// The waveform of `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<&Waveform> {
        self.waves.get(name)
    }

    /// Iterates over `(name, waveform)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Waveform)> {
        self.waves.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of recorded signals.
    pub fn len(&self) -> usize {
        self.waves.len()
    }

    /// Whether no signal was recorded.
    pub fn is_empty(&self) -> bool {
        self.waves.is_empty()
    }

    /// Serializes the set as a minimal VCD (value change dump) document with
    /// 1 ps resolution, usable with standard waveform viewers.
    pub fn to_vcd(&self, module: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module {module} $end");
        let ids: Vec<(String, char)> = self
            .waves
            .keys()
            .enumerate()
            .map(|(i, name)| (name.clone(), (33u8 + (i % 90) as u8) as char))
            .collect();
        for (name, id) in &ids {
            let _ = writeln!(out, "$var wire 1 {id} {name} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        // Merge all changes into a single time-ordered stream.
        let mut events: Vec<(f64, char, Value)> = Vec::new();
        for (name, id) in &ids {
            for &(t, v) in self.waves[name].changes() {
                events.push((t, *id, v));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut last_time = f64::NEG_INFINITY;
        for (t, id, v) in events {
            if t != last_time {
                let _ = writeln!(out, "#{}", t.round() as i64);
                last_time = t;
            }
            let ch = match v {
                Value::Zero => '0',
                Value::One => '1',
                Value::X => 'x',
            };
            let _ = writeln!(out, "{ch}{id}");
        }
        out
    }

    /// Convenience: the waveform of a net, looked up through the netlist's
    /// net names.
    pub fn of_net(&self, netlist: &Netlist, net: NetId) -> Option<&Waveform> {
        self.get(netlist.net(net).name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_collapses_duplicates() {
        let mut w = Waveform::new();
        w.push(0.0, Value::Zero);
        w.push(5.0, Value::Zero);
        w.push(10.0, Value::One);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    fn value_at_times() {
        let mut w = Waveform::new();
        w.push(10.0, Value::One);
        w.push(20.0, Value::Zero);
        assert_eq!(w.value_at(5.0), Value::X);
        assert_eq!(w.value_at(10.0), Value::One);
        assert_eq!(w.value_at(15.0), Value::One);
        assert_eq!(w.value_at(25.0), Value::Zero);
    }

    #[test]
    fn edges_and_ascii() {
        let mut w = Waveform::new();
        w.push(0.0, Value::Zero);
        w.push(10.0, Value::One);
        w.push(20.0, Value::Zero);
        w.push(30.0, Value::One);
        assert_eq!(w.edges_to(Value::One), vec![10.0, 30.0]);
        let art = w.ascii(0.0, 40.0, 10.0);
        assert_eq!(art, "_#_#");
    }

    #[test]
    fn waveform_set_and_vcd() {
        let mut set = WaveformSet::new();
        set.push("clk", 0.0, Value::Zero);
        set.push("clk", 10.0, Value::One);
        set.push("q", 12.0, Value::One);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert!(set.get("clk").is_some());
        assert!(set.get("missing").is_none());
        let vcd = set.to_vcd("top");
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("#10"));
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn of_net_uses_net_names() {
        let mut n = Netlist::new("t");
        let a = n.add_input("sig_a");
        let mut set = WaveformSet::new();
        set.push("sig_a", 0.0, Value::One);
        assert!(set.of_net(&n, a).is_some());
    }
}
