//! Switching-activity accounting.
//!
//! The dynamic-power model of the paper's evaluation is activity based:
//! every output transition of a cell dissipates that cell's switching
//! energy. The simulator increments these counters as it commits events;
//! `desync-power` converts them into milliwatts.

use desync_netlist::{NetId, Netlist};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Switching-activity counters collected during one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Activity {
    /// Number of value transitions observed per net (indexed by net id).
    pub transitions: Vec<u64>,
    /// Total simulated time in picoseconds.
    pub duration_ps: f64,
}

impl Activity {
    /// Creates zeroed counters for a netlist with `num_nets` nets.
    pub fn new(num_nets: usize) -> Self {
        Self {
            transitions: vec![0; num_nets],
            duration_ps: 0.0,
        }
    }

    /// Records one transition on `net`.
    pub fn record(&mut self, net: NetId) {
        if let Some(slot) = self.transitions.get_mut(net.index()) {
            *slot += 1;
        }
    }

    /// Transitions observed on `net`.
    pub fn transitions_on(&self, net: NetId) -> u64 {
        self.transitions.get(net.index()).copied().unwrap_or(0)
    }

    /// Total number of transitions across all nets.
    pub fn total_transitions(&self) -> u64 {
        self.transitions.iter().sum()
    }

    /// Average toggle rate of `net` in transitions per nanosecond.
    pub fn toggle_rate_per_ns(&self, net: NetId) -> f64 {
        if self.duration_ps <= 0.0 {
            return 0.0;
        }
        self.transitions_on(net) as f64 / (self.duration_ps / 1000.0)
    }

    /// Transitions per named net, for reports.
    pub fn by_name(&self, netlist: &Netlist) -> HashMap<String, u64> {
        netlist
            .nets()
            .map(|(id, n)| (n.name.to_string(), self.transitions_on(id)))
            .collect()
    }

    /// Merges the counters of another run (e.g. to accumulate over several
    /// stimulus segments). Durations add up; counter vectors must have the
    /// same length.
    ///
    /// # Panics
    ///
    /// Panics if the two activities were collected on netlists with a
    /// different number of nets.
    pub fn merge(&mut self, other: &Activity) {
        assert_eq!(
            self.transitions.len(),
            other.transitions.len(),
            "activity counters belong to different netlists"
        );
        for (a, b) in self.transitions.iter_mut().zip(other.transitions.iter()) {
            *a += b;
        }
        self.duration_ps += other.duration_ps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut a = Activity::new(3);
        a.record(NetId(0));
        a.record(NetId(0));
        a.record(NetId(2));
        a.duration_ps = 2000.0;
        assert_eq!(a.transitions_on(NetId(0)), 2);
        assert_eq!(a.transitions_on(NetId(1)), 0);
        assert_eq!(a.total_transitions(), 3);
        assert!((a.toggle_rate_per_ns(NetId(0)) - 1.0).abs() < 1e-12);
        // Out-of-range nets are ignored rather than panicking.
        a.record(NetId(99));
        assert_eq!(a.transitions_on(NetId(99)), 0);
    }

    #[test]
    fn zero_duration_toggle_rate_is_zero() {
        let a = Activity::new(1);
        assert_eq!(a.toggle_rate_per_ns(NetId(0)), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Activity::new(2);
        a.record(NetId(0));
        a.duration_ps = 100.0;
        let mut b = Activity::new(2);
        b.record(NetId(0));
        b.record(NetId(1));
        b.duration_ps = 50.0;
        a.merge(&b);
        assert_eq!(a.transitions_on(NetId(0)), 2);
        assert_eq!(a.transitions_on(NetId(1)), 1);
        assert_eq!(a.duration_ps, 150.0);
    }

    #[test]
    #[should_panic(expected = "different netlists")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = Activity::new(2);
        let b = Activity::new(3);
        a.merge(&b);
    }

    #[test]
    fn by_name_reports_all_nets() {
        let mut n = Netlist::new("t");
        let x = n.add_input("x");
        let _y = n.add_output("y");
        let mut a = Activity::new(n.num_nets());
        a.record(x);
        let map = a.by_name(&n);
        assert_eq!(map["x"], 1);
        assert_eq!(map["y"], 0);
    }
}
