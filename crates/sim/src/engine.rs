//! The core event-driven simulation engine.
//!
//! [`EventSimulator`] executes any [`Netlist`] — purely synchronous,
//! latch-based, or containing handshake-controller cells — with per-cell
//! propagation delays taken from a [`CellLibrary`] plus a linear wire-load
//! term. It maintains three observable artifacts:
//!
//! * the switching [`Activity`] counters (for the power model),
//! * an optional [`WaveformSet`] for watched nets (for the figure
//!   reproductions), and
//! * the list of register *captures* — the value latched by every flip-flop
//!   at each rising clock edge and by every latch at each closing enable
//!   edge — from which the flow-equivalence traces are built.

use crate::activity::Activity;
use crate::waveform::WaveformSet;
use desync_netlist::value::{evaluate, evaluate_c_element, evaluate_latch};
use desync_netlist::{CellId, CellKind, CellLibrary, NetId, Netlist, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashSet};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Extra wire delay per fan-out sink, in picoseconds (matches the
    /// wire-load model used by the timing analyzer).
    pub wire_delay_per_fanout_ps: f64,
    /// Flip-flop clock-to-Q delay in picoseconds.
    pub clk_to_q_ps: f64,
    /// Latch data-to-Q delay (when transparent) in picoseconds.
    pub latch_d_to_q_ps: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            wire_delay_per_fanout_ps: 4.0,
            clk_to_q_ps: 110.0,
            latch_d_to_q_ps: 70.0,
        }
    }
}

/// One register capture: the value stored into a sequential cell at a
/// capturing edge (clock rising edge for flip-flops, closing enable edge for
/// latches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capture {
    /// Simulation time of the capture, in picoseconds.
    pub time_ps: f64,
    /// The sequential cell that captured.
    pub cell: CellId,
    /// The captured value.
    pub value: Value,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    net: NetId,
    value: Value,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering so the BinaryHeap becomes a min-heap on (time, seq).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An event-driven gate-level simulator bound to one netlist.
#[derive(Debug, Clone)]
pub struct EventSimulator<'a> {
    netlist: &'a Netlist,
    config: SimConfig,
    values: Vec<Value>,
    /// The value most recently *scheduled* for each net (projected value).
    /// Cells compare against this, not against the committed value, so that
    /// a pending event is always followed by a corrective event when the
    /// inputs change back before it commits.
    projected: Vec<Value>,
    readers: Vec<Vec<CellId>>,
    cell_delay: Vec<f64>,
    queue: BinaryHeap<Event>,
    seq: u64,
    time: f64,
    watched: HashSet<NetId>,
    /// Switching-activity counters (one slot per net).
    pub activity: Activity,
    /// Waveforms of the watched nets.
    pub waveforms: WaveformSet,
    /// Register captures in chronological order.
    pub captures: Vec<Capture>,
}

impl<'a> EventSimulator<'a> {
    /// Creates a simulator for `netlist` with delays from `library`.
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary, config: SimConfig) -> Self {
        let fanout = netlist.fanout_map();
        let cell_delay = netlist
            .cells()
            .map(|(_, c)| {
                let fo = fanout[c.output.index()].max(1);
                let base = match c.kind {
                    CellKind::Dff => config.clk_to_q_ps,
                    CellKind::LatchLow | CellKind::LatchHigh => config.latch_d_to_q_ps,
                    _ => library
                        .template(c.kind)
                        .instance_delay_ps(c.inputs.len().max(1), fo),
                };
                base + config.wire_delay_per_fanout_ps * fo as f64
            })
            .collect();
        let mut sim = Self {
            netlist,
            config,
            values: vec![Value::X; netlist.num_nets()],
            projected: vec![Value::X; netlist.num_nets()],
            readers: netlist.reader_map(),
            cell_delay,
            queue: BinaryHeap::new(),
            seq: 0,
            time: 0.0,
            watched: HashSet::new(),
            activity: Activity::new(netlist.num_nets()),
            waveforms: WaveformSet::new(),
            captures: Vec::new(),
        };
        // Constant drivers have no inputs, so nothing would ever trigger
        // their evaluation; seed their outputs at time zero.
        for (_, cell) in netlist.cells() {
            match cell.kind {
                CellKind::Const0 => sim.schedule(cell.output, Value::Zero, 0.0),
                CellKind::Const1 => sim.schedule(cell.output, Value::One, 0.0),
                _ => {}
            }
        }
        sim
    }

    /// The current simulation time in picoseconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> Value {
        self.values[net.index()]
    }

    /// The current value of a net looked up by name, or `X` for unknown
    /// names.
    pub fn value_by_name(&self, name: &str) -> Value {
        self.netlist
            .find_net(name)
            .map(|n| self.value(n))
            .unwrap_or(Value::X)
    }

    /// Starts recording a waveform for `net`.
    pub fn watch(&mut self, net: NetId) {
        self.watched.insert(net);
    }

    /// Starts recording waveforms for every net whose name is in `names`.
    pub fn watch_named(&mut self, names: &[&str]) {
        for &name in names {
            if let Some(net) = self.netlist.find_net(name) {
                self.watch(net);
            }
        }
    }

    /// Schedules a value change on `net` at absolute time `at_ps`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ps` is in the past (before the current simulation
    /// time).
    pub fn schedule(&mut self, net: NetId, value: Value, at_ps: f64) {
        assert!(
            at_ps + 1e-9 >= self.time,
            "cannot schedule an event in the past ({at_ps} < {})",
            self.time
        );
        self.seq += 1;
        self.projected[net.index()] = value;
        self.queue.push(Event {
            time: at_ps.max(self.time),
            seq: self.seq,
            net,
            value,
        });
    }

    /// Drives a primary input (or any net) to `value` at the current time.
    pub fn set(&mut self, net: NetId, value: Value) {
        self.schedule(net, value, self.time);
    }

    /// Forces the output nets of all flip-flops and latches to `value` at
    /// the current time, modelling a global reset of the register state.
    pub fn initialize_registers(&mut self, value: Value) {
        let nets: Vec<NetId> = self
            .netlist
            .cells()
            .filter(|(_, c)| c.kind == CellKind::Dff || c.kind.is_latch())
            .map(|(_, c)| c.output)
            .collect();
        for net in nets {
            self.schedule(net, value, self.time);
        }
    }

    /// Runs the simulation until the event queue is empty or the next event
    /// lies beyond `until_ps`; the simulation time is then advanced to
    /// `until_ps`.
    ///
    /// Returns the number of committed events.
    pub fn run_until(&mut self, until_ps: f64) -> usize {
        let mut committed = 0usize;
        while let Some(next) = self.queue.peek() {
            if next.time > until_ps {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            self.time = event.time;
            committed += self.commit(event);
        }
        self.time = self.time.max(until_ps);
        self.activity.duration_ps = self.time;
        committed
    }

    /// Runs until the event queue drains completely (combinational settling).
    /// Returns the number of committed events.
    ///
    /// A safety cap of `max_events` guards against oscillating feedback
    /// loops; the run stops early when the cap is reached.
    pub fn settle(&mut self, max_events: usize) -> usize {
        let mut committed = 0usize;
        while committed < max_events {
            let Some(event) = self.queue.pop() else { break };
            self.time = event.time;
            committed += self.commit(event);
        }
        self.activity.duration_ps = self.time;
        committed
    }

    fn commit(&mut self, event: Event) -> usize {
        let old = self.values[event.net.index()];
        if old == event.value {
            return 0;
        }
        self.values[event.net.index()] = event.value;
        if old != Value::X {
            // Transitions out of the unknown initialization state are not
            // counted as switching activity.
            self.activity.record(event.net);
        }
        if self.watched.contains(&event.net) {
            self.waveforms
                .push(&self.netlist.net(event.net).name, event.time, event.value);
        }
        // React: evaluate every reader of the changed net.
        let readers = self.readers[event.net.index()].clone();
        for cell_id in readers {
            self.evaluate_cell(cell_id, event.net, old, event.value);
        }
        1
    }

    fn evaluate_cell(&mut self, cell_id: CellId, changed: NetId, old: Value, new: Value) {
        let cell = self.netlist.cell(cell_id);
        let delay = self.cell_delay[cell_id.index()];
        let input_values: Vec<Value> = cell.inputs.iter().map(|&n| self.value(n)).collect();
        match cell.kind {
            CellKind::Dff => {
                let clk = cell.inputs[1];
                if changed == clk && new == Value::One && old != Value::One {
                    // Rising clock edge: capture D.
                    let d = self.value(cell.inputs[0]);
                    self.captures.push(Capture {
                        time_ps: self.time,
                        cell: cell_id,
                        value: d,
                    });
                    self.schedule(cell.output, d, self.time + delay);
                }
            }
            CellKind::LatchLow | CellKind::LatchHigh => {
                let transparent_high = cell.kind == CellKind::LatchHigh;
                let d = input_values[0];
                let en = input_values[1];
                // The held state is the value the output is moving towards
                // (the last scheduled value), so that pending events and the
                // hold behaviour stay consistent.
                let stored = self.projected[cell.output.index()];
                let q = evaluate_latch(d, en, stored, transparent_high);
                if q != self.projected[cell.output.index()] {
                    self.schedule(cell.output, q, self.time + delay);
                }
                // A closing enable edge captures the current data value.
                let enable_net = cell.inputs[1];
                let closing = if transparent_high {
                    Value::Zero
                } else {
                    Value::One
                };
                if changed == enable_net && new == closing && old != closing && old != Value::X {
                    self.captures.push(Capture {
                        time_ps: self.time,
                        cell: cell_id,
                        value: d,
                    });
                }
            }
            CellKind::CElement => {
                let stored = self.projected[cell.output.index()];
                let q = evaluate_c_element(&input_values, stored);
                if q != self.projected[cell.output.index()] {
                    self.schedule(cell.output, q, self.time + delay);
                }
            }
            kind => {
                let q = evaluate(kind, &input_values);
                if q != self.projected[cell.output.index()] {
                    self.schedule(cell.output, q, self.time + delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellLibrary;

    fn lib() -> CellLibrary {
        CellLibrary::generic_90nm()
    }

    #[test]
    fn combinational_propagation() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::And, &[a, b], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::One);
        sim.set(b, Value::One);
        sim.settle(1000);
        assert_eq!(sim.value(y), Value::One);
        sim.set(b, Value::Zero);
        sim.settle(1000);
        assert_eq!(sim.value(y), Value::Zero);
        assert_eq!(sim.value_by_name("y"), Value::Zero);
        assert_eq!(sim.value_by_name("missing"), Value::X);
    }

    #[test]
    fn gate_delay_is_respected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Buf, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::One);
        // Before the buffer delay elapses the output is still X.
        sim.run_until(1.0);
        assert_eq!(sim.value(y), Value::X);
        sim.run_until(10_000.0);
        assert_eq!(sim.value(y), Value::One);
        assert!(sim.time() >= 10_000.0);
    }

    #[test]
    fn dff_captures_on_rising_edge() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d = n.add_input("d");
        let q = n.add_output("q");
        n.add_dff("r", d, clk, q).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(clk, Value::Zero);
        sim.set(d, Value::One);
        sim.settle(100);
        assert_eq!(sim.value(q), Value::X);
        // Rising edge captures d = 1.
        sim.schedule(clk, Value::One, sim.time() + 100.0);
        sim.settle(100);
        assert_eq!(sim.value(q), Value::One);
        assert_eq!(sim.captures.len(), 1);
        assert_eq!(sim.captures[0].value, Value::One);
        // Falling edge does not capture.
        sim.schedule(clk, Value::Zero, sim.time() + 100.0);
        sim.settle(100);
        assert_eq!(sim.captures.len(), 1);
    }

    #[test]
    fn latch_transparency_and_capture() {
        let mut n = Netlist::new("t");
        let en = n.add_input("en");
        let d = n.add_input("d");
        let q = n.add_output("q");
        n.add_latch("l", d, en, q, true).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(en, Value::Zero);
        sim.set(d, Value::Zero);
        sim.settle(100);
        // Open the latch: output follows data.
        sim.schedule(en, Value::One, 1000.0);
        sim.schedule(d, Value::One, 1200.0);
        sim.run_until(2000.0);
        assert_eq!(sim.value(q), Value::One);
        // Close the latch: capture recorded, further data changes ignored.
        sim.schedule(en, Value::Zero, 2500.0);
        sim.schedule(d, Value::Zero, 2600.0);
        sim.run_until(4000.0);
        assert_eq!(sim.value(q), Value::One);
        assert_eq!(sim.captures.len(), 1);
        assert_eq!(sim.captures[0].value, Value::One);
    }

    #[test]
    fn c_element_waits_for_agreement() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_output("y");
        n.add_c_element("c", &[a, b], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::Zero);
        sim.set(b, Value::Zero);
        sim.settle(100);
        assert_eq!(sim.value(y), Value::Zero);
        sim.set(a, Value::One);
        sim.settle(100);
        assert_eq!(sim.value(y), Value::Zero, "output holds until both agree");
        sim.set(b, Value::One);
        sim.settle(100);
        assert_eq!(sim.value(y), Value::One);
    }

    #[test]
    fn activity_counts_transitions_not_initialization() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::Zero);
        sim.settle(100);
        // X -> 0 / X -> 1 are not counted.
        assert_eq!(sim.activity.total_transitions(), 0);
        sim.set(a, Value::One);
        sim.settle(100);
        // a toggled and y toggled.
        assert_eq!(sim.activity.transitions_on(a), 1);
        assert_eq!(sim.activity.transitions_on(y), 1);
    }

    #[test]
    fn waveform_recording_of_watched_nets() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.watch_named(&["y"]);
        sim.set(a, Value::Zero);
        sim.settle(100);
        sim.set(a, Value::One);
        sim.settle(100);
        let w = sim.waveforms.get("y").unwrap();
        assert!(w.len() >= 2);
        assert!(sim.waveforms.get("a").is_none(), "a was not watched");
    }

    #[test]
    fn initialize_registers_sets_outputs() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d = n.add_input("d");
        let q = n.add_output("q");
        n.add_dff("r", d, clk, q).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.initialize_registers(Value::Zero);
        sim.settle(100);
        assert_eq!(sim.value(q), Value::Zero);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.mark_output(a);
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.run_until(100.0);
        sim.schedule(a, Value::One, 5.0);
    }
}
