//! The core event-driven simulation engine.
//!
//! [`EventSimulator`] executes any [`Netlist`] — purely synchronous,
//! latch-based, or containing handshake-controller cells — with per-cell
//! propagation delays taken from a [`CellLibrary`] plus a linear wire-load
//! term. It maintains three observable artifacts:
//!
//! * the switching [`Activity`] counters (for the power model),
//! * per-net waveforms for watched nets (recorded by [`NetId`] during the
//!   run; names are resolved once at export time by
//!   [`EventSimulator::waveforms`]), and
//! * the list of register *captures* — the value latched by every flip-flop
//!   at each rising clock edge and by every latch at each closing enable
//!   edge — from which the flow-equivalence traces are built.
//!
//! # Kernel design
//!
//! The kernel is allocation-free on the hot path (after construction and
//! queue warm-up, committing an event allocates nothing), and the
//! structure-dependent half of construction is shareable:
//!
//! * **Compiled model + cursor split.** Everything derived from the netlist
//!   structure and the library — CSR topology, pin lists, per-cell delays,
//!   constant seeds, the register list — lives in an immutable
//!   [`CompiledModel`] built once by [`CompiledModel::compile`]. An
//!   `EventSimulator` is a cursor over an `Arc` of that model
//!   ([`EventSimulator::with_model`]): it owns only the per-run mutable
//!   state (net values, the calendar queue, activity, captures, the watch
//!   list), so a verification sweep re-binds schedules and stimuli onto one
//!   compiled model instead of recompiling topology per point.
//! * **Integer time keys.** Events are ordered by a `u64` key — the IEEE-754
//!   bit pattern of the (always non-negative, finite) f64 picosecond time.
//!   For non-negative finite doubles the bit pattern is order-isomorphic to
//!   the numeric value, so integer comparison gives a *total* order that is
//!   exactly the f64 order while converting back losslessly: event times are
//!   bit-identical to an f64 kernel, with none of the `partial_cmp`
//!   NaN-in-the-heap hazards. Non-finite times are rejected at the
//!   [`EventSimulator::schedule`] boundary.
//! * **Calendar queue.** The pending-event set is a bucketed calendar queue:
//!   a window of fixed-width time buckets (each a small binary heap on
//!   `(key, seq)`) plus a heap *overflow tier* for events beyond the window
//!   horizon (e.g. an [`EnableSchedule`](crate::EnableSchedule) scheduled
//!   hundreds of cycles up front). Pops scan forward from a cursor;
//!   when the window drains, it is re-based onto the overflow minimum and
//!   in-horizon events migrate back into buckets.
//! * **CSR topology.** The net → reader-cells map and the per-cell input
//!   pin lists are flat compressed-sparse-row arrays (offset + index), so
//!   reacting to a committed event walks a contiguous slice instead of
//!   cloning a per-net `Vec`, and evaluating a cell gathers its input
//!   values into one reused scratch buffer instead of collecting a fresh
//!   `Vec<Value>` per evaluation.
//! * **Bitset watch list.** Whether a net is watched is one bit test; the
//!   waveform of a watched net is appended to a dense per-net slot with no
//!   name lookup on the commit path.

use crate::activity::Activity;
use crate::model::CompiledModel;
use crate::waveform::{Waveform, WaveformSet};
use desync_netlist::value::{evaluate, evaluate_c_element, evaluate_latch};
use desync_netlist::{CellId, CellKind, CellLibrary, NetId, Netlist, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Extra wire delay per fan-out sink, in picoseconds (matches the
    /// wire-load model used by the timing analyzer).
    pub wire_delay_per_fanout_ps: f64,
    /// Flip-flop clock-to-Q delay in picoseconds.
    pub clk_to_q_ps: f64,
    /// Latch data-to-Q delay (when transparent) in picoseconds.
    pub latch_d_to_q_ps: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            wire_delay_per_fanout_ps: 4.0,
            clk_to_q_ps: 110.0,
            latch_d_to_q_ps: 70.0,
        }
    }
}

impl SimConfig {
    /// The configuration as stable bit patterns, for use in content-addressed
    /// cache keys (see `desync-core`'s sync-reference-run cache).
    pub fn key_bits(&self) -> [u64; 3] {
        [
            self.wire_delay_per_fanout_ps.to_bits(),
            self.clk_to_q_ps.to_bits(),
            self.latch_d_to_q_ps.to_bits(),
        ]
    }
}

/// One register capture: the value stored into a sequential cell at a
/// capturing edge (clock rising edge for flip-flops, closing enable edge for
/// latches).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capture {
    /// Simulation time of the capture, in picoseconds.
    pub time_ps: f64,
    /// The sequential cell that captured.
    pub cell: CellId,
    /// The captured value.
    pub value: Value,
}

/// An event ordered by `(key, seq)` — both plain integers, so the order is
/// total. `key` is the bit pattern of the non-negative f64 event time.
///
/// Generic over the payload `P`: the scalar kernel carries one [`Value`],
/// the packed kernel ([`crate::PackedSimulator`]) a
/// [`PackedValue`](crate::PackedValue) of 64 lanes. Ordering ignores the
/// payload entirely, so both kernels pop events in the identical
/// `(time, sequence)` order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event<P> {
    pub(crate) key: u64,
    pub(crate) seq: u64,
    pub(crate) net: NetId,
    pub(crate) value: P,
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        (self.key, self.seq) == (other.key, other.seq)
    }
}

impl<P> Eq for Event<P> {}

impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.seq).cmp(&(other.key, other.seq))
    }
}

impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Event<P> {
    pub(crate) fn time_ps(&self) -> f64 {
        f64::from_bits(self.key)
    }
}

/// Number of buckets in the calendar window.
const CALENDAR_BUCKETS: usize = 256;
/// Width of one calendar bucket in picoseconds. Gate delays in the generic
/// library are tens of ps and clock periods a few thousand, so the window
/// spans several clock periods while keeping buckets nearly singleton.
const CALENDAR_BUCKET_WIDTH_PS: f64 = 64.0;

/// A bucketed calendar queue with a heap overflow tier.
///
/// Invariants:
/// * every queued event time is ≥ the time of the last popped event (the
///   simulator never schedules into the past),
/// * bucket `i` holds exactly the events with time in
///   `[base + i·width, base + (i+1)·width)`; the overflow heap holds the
///   events at or beyond `base + BUCKETS·width`,
/// * `cursor` is ≤ the bucket index of the earliest queued event, so a pop
///   scans forward only.
#[derive(Debug, Clone)]
pub(crate) struct CalendarQueue<P> {
    buckets: Vec<BinaryHeap<Reverse<Event<P>>>>,
    overflow: BinaryHeap<Reverse<Event<P>>>,
    /// Start of the bucket window, picoseconds.
    base_ps: f64,
    cursor: usize,
    len: usize,
}

impl<P: Copy> CalendarQueue<P> {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..CALENDAR_BUCKETS).map(|_| BinaryHeap::new()).collect(),
            overflow: BinaryHeap::new(),
            base_ps: 0.0,
            cursor: 0,
            len: 0,
        }
    }

    fn span_ps(&self) -> f64 {
        CALENDAR_BUCKET_WIDTH_PS * self.buckets.len() as f64
    }

    /// The bucket index of `time_ps`, or `None` when it lies beyond the
    /// window horizon (→ overflow tier).
    fn bucket_of(&self, time_ps: f64) -> Option<usize> {
        let offset = ((time_ps - self.base_ps) / CALENDAR_BUCKET_WIDTH_PS).max(0.0) as usize;
        (offset < self.buckets.len()).then_some(offset)
    }

    pub(crate) fn push(&mut self, event: Event<P>) {
        self.len += 1;
        match self.bucket_of(event.time_ps()) {
            Some(index) => {
                // Defensive: a push at the current time lands in the cursor
                // bucket; never ahead of it, but keep the cursor honest.
                self.cursor = self.cursor.min(index);
                self.buckets[index].push(Reverse(event));
            }
            None => self.overflow.push(Reverse(event)),
        }
    }

    /// The earliest queued event, advancing the cursor over drained buckets.
    ///
    /// Any bucketed event precedes every overflow event (the overflow tier
    /// only holds events beyond the window horizon), so the first non-empty
    /// bucket holds the minimum; with the window empty the overflow minimum
    /// is global.
    pub(crate) fn peek(&mut self) -> Option<Event<P>> {
        while self.cursor < self.buckets.len() {
            if let Some(&Reverse(event)) = self.buckets[self.cursor].peek() {
                return Some(event);
            }
            self.cursor += 1;
        }
        self.overflow.peek().map(|&Reverse(event)| event)
    }

    /// Removes and returns the earliest event. When the window has drained
    /// and the minimum comes from the overflow tier, the window is re-based
    /// onto it and every overflow event inside the new horizon migrates
    /// into its bucket.
    pub(crate) fn pop(&mut self) -> Option<Event<P>> {
        while self.cursor < self.buckets.len() {
            if let Some(Reverse(event)) = self.buckets[self.cursor].pop() {
                self.len -= 1;
                return Some(event);
            }
            self.cursor += 1;
        }
        let Reverse(event) = self.overflow.pop()?;
        self.len -= 1;
        // Re-base the (empty) window onto the popped event. The popped event
        // becomes the new current time, so no later push can precede the new
        // base.
        let time = event.time_ps();
        self.base_ps = (time / CALENDAR_BUCKET_WIDTH_PS).floor() * CALENDAR_BUCKET_WIDTH_PS;
        self.cursor = 0;
        let horizon = self.base_ps + self.span_ps();
        while let Some(&Reverse(next)) = self.overflow.peek() {
            if next.time_ps() >= horizon {
                break;
            }
            let Reverse(next) = self.overflow.pop().expect("peeked overflow event exists");
            let index = self
                .bucket_of(next.time_ps())
                .expect("event inside the horizon has a bucket");
            self.buckets[index].push(Reverse(next));
        }
        Some(event)
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An event-driven gate-level simulator: a per-run *cursor* over a shared
/// [`CompiledModel`] of one netlist.
#[derive(Debug, Clone)]
pub struct EventSimulator<'a> {
    netlist: &'a Netlist,
    /// The immutable structure half: topology, pin lists, delays. Shared
    /// across cursors (and across sweep points, via `desync-core`'s
    /// artifact store).
    model: Arc<CompiledModel>,
    values: Vec<Value>,
    /// The value most recently *scheduled* for each net (projected value).
    /// Cells compare against this, not against the committed value, so that
    /// a pending event is always followed by a corrective event when the
    /// inputs change back before it commits.
    projected: Vec<Value>,
    queue: CalendarQueue<Value>,
    seq: u64,
    time: f64,
    committed: usize,
    /// One bit per net: whether a waveform is recorded for it.
    watched: Vec<u64>,
    /// Net → index into `waves` (`u32::MAX` = not watched).
    watch_slot: Vec<u32>,
    waves: Vec<(NetId, Waveform)>,
    /// Reused input-value gather buffer (cleared per evaluation, never
    /// reallocated after warm-up).
    scratch: Vec<Value>,
    /// Switching-activity counters (one slot per net).
    pub activity: Activity,
    /// Register captures in chronological order.
    pub captures: Vec<Capture>,
}

impl<'a> EventSimulator<'a> {
    /// Creates a simulator for `netlist` with delays from `library`,
    /// compiling a private model. When several runs share one netlist
    /// structure, compile once and use [`EventSimulator::with_model`].
    pub fn new(netlist: &'a Netlist, library: &CellLibrary, config: SimConfig) -> Self {
        Self::with_model(
            netlist,
            Arc::new(CompiledModel::compile(netlist, library, config)),
        )
    }

    /// Creates a cursor over a previously compiled `model` of `netlist`.
    ///
    /// The run is bit-identical to one from [`EventSimulator::new`] with
    /// the inputs the model was compiled from — construction only allocates
    /// the per-run state vectors.
    ///
    /// # Panics
    ///
    /// Panics if the model's dimensions do not match `netlist` (the model
    /// was compiled from a different structure).
    pub fn with_model(netlist: &'a Netlist, model: Arc<CompiledModel>) -> Self {
        assert!(
            model.num_nets() == netlist.num_nets() && model.num_cells() == netlist.num_cells(),
            "compiled model ({} nets, {} cells) does not match netlist `{}` ({} nets, {} cells)",
            model.num_nets(),
            model.num_cells(),
            netlist.name(),
            netlist.num_nets(),
            netlist.num_cells(),
        );
        let num_nets = model.num_nets();
        let mut sim = Self {
            netlist,
            model,
            values: vec![Value::X; num_nets],
            projected: vec![Value::X; num_nets],
            queue: CalendarQueue::new(),
            seq: 0,
            time: 0.0,
            committed: 0,
            watched: vec![0u64; num_nets.div_ceil(64)],
            watch_slot: vec![u32::MAX; num_nets],
            waves: Vec::new(),
            scratch: Vec::new(),
            activity: Activity::new(num_nets),
            captures: Vec::new(),
        };
        // Seed the constant drivers at time zero, in the same (cell) order
        // the old constructor used — the order fixes the event sequence
        // numbers, keeping runs bit-identical.
        for i in 0..sim.model.const_seeds.len() {
            let (net, value) = sim.model.const_seeds[i];
            sim.schedule(net, value, 0.0);
        }
        sim
    }

    /// The compiled model this cursor runs over.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The current simulation time in picoseconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration in use.
    pub fn config(&self) -> SimConfig {
        self.model.config
    }

    /// Total number of committed events since construction.
    pub fn committed_events(&self) -> usize {
        self.committed
    }

    /// The current value of a net.
    pub fn value(&self, net: NetId) -> Value {
        self.values[net.index()]
    }

    /// The current value of a net looked up by name, or `X` for unknown
    /// names.
    pub fn value_by_name(&self, name: &str) -> Value {
        self.netlist
            .find_net(name)
            .map(|n| self.value(n))
            .unwrap_or(Value::X)
    }

    /// Starts recording a waveform for `net`.
    pub fn watch(&mut self, net: NetId) {
        let index = net.index();
        if self.watch_slot[index] == u32::MAX {
            self.watched[index / 64] |= 1u64 << (index % 64);
            self.watch_slot[index] = self.waves.len() as u32;
            self.waves.push((net, Waveform::new()));
        }
    }

    /// Starts recording waveforms for every net whose name is in `names`.
    pub fn watch_named(&mut self, names: &[&str]) {
        for &name in names {
            if let Some(net) = self.netlist.find_net(name) {
                self.watch(net);
            }
        }
    }

    /// The waveform recorded for `net`, if it is watched.
    pub fn waveform_of(&self, net: NetId) -> Option<&Waveform> {
        match self.watch_slot.get(net.index()) {
            Some(&slot) if slot != u32::MAX => Some(&self.waves[slot as usize].1),
            _ => None,
        }
    }

    /// The waveforms of all watched nets as a name-keyed set.
    ///
    /// Waveforms are recorded by [`NetId`] during the run; this resolves
    /// each watched net's name exactly once, at export time.
    pub fn waveforms(&self) -> WaveformSet {
        let mut set = WaveformSet::new();
        for (net, wave) in &self.waves {
            set.insert(self.netlist.net(*net).name.to_string(), wave.clone());
        }
        set
    }

    /// Schedules a value change on `net` at absolute time `at_ps`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ps` is not finite (NaN or ±∞ would corrupt the event
    /// order), or if it is in the past (before the current simulation time).
    pub fn schedule(&mut self, net: NetId, value: Value, at_ps: f64) {
        assert!(
            at_ps.is_finite(),
            "cannot schedule an event at non-finite time {at_ps} ps on net `{}`",
            self.netlist.net(net).name
        );
        assert!(
            at_ps + 1e-9 >= self.time,
            "cannot schedule an event in the past ({at_ps} < {})",
            self.time
        );
        self.seq += 1;
        self.projected[net.index()] = value;
        // `+ 0.0` normalizes a negative zero (whose bit pattern would sort
        // *after* every positive time) to +0.0; clamped times are otherwise
        // non-negative, so the key order equals the numeric order.
        let time = at_ps.max(self.time) + 0.0;
        self.queue.push(Event {
            key: time.to_bits(),
            seq: self.seq,
            net,
            value,
        });
    }

    /// Drives a primary input (or any net) to `value` at the current time.
    pub fn set(&mut self, net: NetId, value: Value) {
        self.schedule(net, value, self.time);
    }

    /// Forces the output nets of all flip-flops and latches to `value` at
    /// the current time, modelling a global reset of the register state.
    pub fn initialize_registers(&mut self, value: Value) {
        for i in 0..self.model.register_outputs.len() {
            let output = self.model.register_outputs[i];
            self.schedule(output, value, self.time);
        }
    }

    /// Runs the simulation until the event queue is empty or the next event
    /// lies beyond `until_ps`; the simulation time is then advanced to
    /// `until_ps`.
    ///
    /// Returns the number of committed events.
    pub fn run_until(&mut self, until_ps: f64) -> usize {
        let mut committed = 0usize;
        while let Some(next) = self.queue.peek() {
            if next.time_ps() > until_ps {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            self.time = event.time_ps();
            committed += self.commit(event);
        }
        self.time = self.time.max(until_ps);
        self.activity.duration_ps = self.time;
        committed
    }

    /// Runs until the event queue drains completely (combinational settling).
    /// Returns the number of committed events.
    ///
    /// A safety cap of `max_events` guards against oscillating feedback
    /// loops; the run stops early when the cap is reached.
    pub fn settle(&mut self, max_events: usize) -> usize {
        let mut committed = 0usize;
        while committed < max_events {
            let Some(event) = self.queue.pop() else { break };
            self.time = event.time_ps();
            committed += self.commit(event);
        }
        self.activity.duration_ps = self.time;
        committed
    }

    fn commit(&mut self, event: Event<Value>) -> usize {
        let net = event.net.index();
        let old = self.values[net];
        if old == event.value {
            return 0;
        }
        self.values[net] = event.value;
        self.committed += 1;
        if old != Value::X {
            // Transitions out of the unknown initialization state are not
            // counted as switching activity.
            self.activity.record(event.net);
        }
        if self.watched[net / 64] & (1u64 << (net % 64)) != 0 {
            let slot = self.watch_slot[net] as usize;
            self.waves[slot].1.push(self.time, event.value);
        }
        // React: evaluate every reader of the changed net (a contiguous CSR
        // slice — nothing is cloned).
        let start = self.model.reader_offsets[net] as usize;
        let end = self.model.reader_offsets[net + 1] as usize;
        for i in start..end {
            let cell_id = self.model.reader_cells[i];
            self.evaluate_cell(cell_id, event.net, old, event.value);
        }
        1
    }

    /// Gathers the committed input values of cell `ci` into the reused
    /// scratch buffer.
    fn gather_inputs(&mut self, ci: usize) {
        let start = self.model.input_offsets[ci] as usize;
        let end = self.model.input_offsets[ci + 1] as usize;
        self.scratch.clear();
        let (scratch, values, model) = (&mut self.scratch, &self.values, &self.model);
        scratch.extend(
            model.input_nets[start..end]
                .iter()
                .map(|n| values[n.index()]),
        );
    }

    fn evaluate_cell(&mut self, cell_id: CellId, changed: NetId, old: Value, new: Value) {
        let ci = cell_id.index();
        let kind = self.model.cell_kind[ci];
        let delay = self.model.cell_delay[ci];
        let pins = self.model.input_offsets[ci] as usize;
        match kind {
            CellKind::Dff => {
                let clk = self.model.input_nets[pins + 1];
                if changed == clk && new == Value::One && old != Value::One {
                    // Rising clock edge: capture D (read once, reused for
                    // both the capture record and the scheduled output).
                    let d = self.values[self.model.input_nets[pins].index()];
                    let output = self.model.cell_output[ci];
                    self.captures.push(Capture {
                        time_ps: self.time,
                        cell: cell_id,
                        value: d,
                    });
                    self.schedule(output, d, self.time + delay);
                }
            }
            CellKind::LatchLow | CellKind::LatchHigh => {
                let transparent_high = kind == CellKind::LatchHigh;
                let d = self.values[self.model.input_nets[pins].index()];
                let enable_net = self.model.input_nets[pins + 1];
                let en = self.values[enable_net.index()];
                let output = self.model.cell_output[ci];
                // The held state is the value the output is moving towards
                // (the last scheduled value), so that pending events and the
                // hold behaviour stay consistent.
                let stored = self.projected[output.index()];
                let q = evaluate_latch(d, en, stored, transparent_high);
                if q != stored {
                    self.schedule(output, q, self.time + delay);
                }
                // A closing enable edge captures the current data value.
                let closing = if transparent_high {
                    Value::Zero
                } else {
                    Value::One
                };
                if changed == enable_net && new == closing && old != closing && old != Value::X {
                    self.captures.push(Capture {
                        time_ps: self.time,
                        cell: cell_id,
                        value: d,
                    });
                }
            }
            CellKind::CElement => {
                self.gather_inputs(ci);
                let output = self.model.cell_output[ci];
                let stored = self.projected[output.index()];
                let q = evaluate_c_element(&self.scratch, stored);
                if q != stored {
                    self.schedule(output, q, self.time + delay);
                }
            }
            kind => {
                self.gather_inputs(ci);
                let output = self.model.cell_output[ci];
                let q = evaluate(kind, &self.scratch);
                if q != self.projected[output.index()] {
                    self.schedule(output, q, self.time + delay);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellLibrary;

    fn lib() -> CellLibrary {
        CellLibrary::generic_90nm()
    }

    #[test]
    fn combinational_propagation() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::And, &[a, b], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::One);
        sim.set(b, Value::One);
        sim.settle(1000);
        assert_eq!(sim.value(y), Value::One);
        sim.set(b, Value::Zero);
        sim.settle(1000);
        assert_eq!(sim.value(y), Value::Zero);
        assert_eq!(sim.value_by_name("y"), Value::Zero);
        assert_eq!(sim.value_by_name("missing"), Value::X);
        assert!(sim.committed_events() > 0);
    }

    #[test]
    fn gate_delay_is_respected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Buf, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::One);
        // Before the buffer delay elapses the output is still X.
        sim.run_until(1.0);
        assert_eq!(sim.value(y), Value::X);
        sim.run_until(10_000.0);
        assert_eq!(sim.value(y), Value::One);
        assert!(sim.time() >= 10_000.0);
    }

    #[test]
    fn dff_captures_on_rising_edge() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d = n.add_input("d");
        let q = n.add_output("q");
        n.add_dff("r", d, clk, q).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(clk, Value::Zero);
        sim.set(d, Value::One);
        sim.settle(100);
        assert_eq!(sim.value(q), Value::X);
        // Rising edge captures d = 1.
        sim.schedule(clk, Value::One, sim.time() + 100.0);
        sim.settle(100);
        assert_eq!(sim.value(q), Value::One);
        assert_eq!(sim.captures.len(), 1);
        assert_eq!(sim.captures[0].value, Value::One);
        // Falling edge does not capture.
        sim.schedule(clk, Value::Zero, sim.time() + 100.0);
        sim.settle(100);
        assert_eq!(sim.captures.len(), 1);
    }

    #[test]
    fn latch_transparency_and_capture() {
        let mut n = Netlist::new("t");
        let en = n.add_input("en");
        let d = n.add_input("d");
        let q = n.add_output("q");
        n.add_latch("l", d, en, q, true).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(en, Value::Zero);
        sim.set(d, Value::Zero);
        sim.settle(100);
        // Open the latch: output follows data.
        sim.schedule(en, Value::One, 1000.0);
        sim.schedule(d, Value::One, 1200.0);
        sim.run_until(2000.0);
        assert_eq!(sim.value(q), Value::One);
        // Close the latch: capture recorded, further data changes ignored.
        sim.schedule(en, Value::Zero, 2500.0);
        sim.schedule(d, Value::Zero, 2600.0);
        sim.run_until(4000.0);
        assert_eq!(sim.value(q), Value::One);
        assert_eq!(sim.captures.len(), 1);
        assert_eq!(sim.captures[0].value, Value::One);
    }

    #[test]
    fn c_element_waits_for_agreement() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_output("y");
        n.add_c_element("c", &[a, b], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::Zero);
        sim.set(b, Value::Zero);
        sim.settle(100);
        assert_eq!(sim.value(y), Value::Zero);
        sim.set(a, Value::One);
        sim.settle(100);
        assert_eq!(sim.value(y), Value::Zero, "output holds until both agree");
        sim.set(b, Value::One);
        sim.settle(100);
        assert_eq!(sim.value(y), Value::One);
    }

    #[test]
    fn activity_counts_transitions_not_initialization() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.set(a, Value::Zero);
        sim.settle(100);
        // X -> 0 / X -> 1 are not counted.
        assert_eq!(sim.activity.total_transitions(), 0);
        sim.set(a, Value::One);
        sim.settle(100);
        // a toggled and y toggled.
        assert_eq!(sim.activity.transitions_on(a), 1);
        assert_eq!(sim.activity.transitions_on(y), 1);
    }

    #[test]
    fn waveform_recording_of_watched_nets() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.watch_named(&["y"]);
        sim.set(a, Value::Zero);
        sim.settle(100);
        sim.set(a, Value::One);
        sim.settle(100);
        let waves = sim.waveforms();
        let w = waves.get("y").unwrap();
        assert!(w.len() >= 2);
        assert!(waves.get("a").is_none(), "a was not watched");
        assert_eq!(sim.waveform_of(y).unwrap(), w);
        assert!(sim.waveform_of(a).is_none());
        // Watching twice does not reset the recorded waveform.
        sim.watch(y);
        assert_eq!(sim.waveform_of(y).unwrap().len(), w.len());
    }

    #[test]
    fn initialize_registers_sets_outputs() {
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d = n.add_input("d");
        let q = n.add_output("q");
        n.add_dff("r", d, clk, q).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.initialize_registers(Value::Zero);
        sim.settle(100);
        assert_eq!(sim.value(q), Value::Zero);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.mark_output(a);
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.run_until(100.0);
        sim.schedule(a, Value::One, 5.0);
    }

    #[test]
    #[should_panic(expected = "non-finite time")]
    fn scheduling_nan_panics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.mark_output(a);
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.schedule(a, Value::One, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite time")]
    fn scheduling_infinity_panics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.mark_output(a);
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.schedule(a, Value::One, f64::INFINITY);
    }

    #[test]
    fn negative_zero_time_sorts_as_zero() {
        // -0.0 passes the finite check; its raw bit pattern would sort
        // after every positive time, so schedule() must normalize it.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Buf, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        sim.schedule(a, Value::One, -0.0);
        sim.schedule(a, Value::Zero, 5.0);
        sim.settle(100);
        // The -0.0 event commits first (as time 0), the 5 ps event after.
        assert_eq!(sim.value(a), Value::Zero);
        assert_eq!(sim.activity.transitions_on(a), 1);
    }

    #[test]
    fn far_future_events_pass_through_the_overflow_tier() {
        // Events far beyond the calendar window land in the overflow heap
        // and migrate back into buckets as the window re-bases.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_output("y");
        n.add_gate("g", CellKind::Buf, &[a], y).unwrap();
        let l = lib();
        let mut sim = EventSimulator::new(&n, &l, SimConfig::default());
        let span = CALENDAR_BUCKET_WIDTH_PS * CALENDAR_BUCKETS as f64;
        // A mix of near, far and very far events, scheduled out of order.
        sim.schedule(a, Value::One, 40.0 * span);
        sim.schedule(a, Value::Zero, 2.5 * span);
        sim.schedule(a, Value::One, 10.0);
        sim.run_until(50.0 * span);
        assert_eq!(sim.value(y), Value::One);
        // a: X->1->0->1 gives two counted transitions; y follows.
        assert_eq!(sim.activity.transitions_on(a), 2);
        assert_eq!(sim.activity.transitions_on(y), 2);
    }

    #[test]
    fn cursors_over_a_shared_model_match_a_private_compile() {
        // Two cursors over one compiled model, versus a fresh `new` per
        // run: committed values, captures and activity must coincide.
        let mut n = Netlist::new("t");
        let clk = n.add_input("clk");
        let d = n.add_input("d");
        let q = n.add_output("q");
        let w = n.add_net("w");
        n.add_gate("g", CellKind::Not, &[d], w).unwrap();
        n.add_dff("r", w, clk, q).unwrap();
        let l = lib();
        let model = Arc::new(CompiledModel::compile(&n, &l, SimConfig::default()));
        let drive = |sim: &mut EventSimulator<'_>| {
            sim.initialize_registers(Value::Zero);
            sim.set(clk, Value::Zero);
            sim.set(d, Value::One);
            sim.settle(1000);
            sim.schedule(clk, Value::One, sim.time() + 100.0);
            sim.settle(1000);
        };
        let mut fresh = EventSimulator::new(&n, &l, SimConfig::default());
        drive(&mut fresh);
        for _ in 0..2 {
            let mut cursor = EventSimulator::with_model(&n, Arc::clone(&model));
            drive(&mut cursor);
            assert_eq!(cursor.value(q), fresh.value(q));
            assert_eq!(cursor.captures, fresh.captures);
            assert_eq!(cursor.committed_events(), fresh.committed_events());
            assert_eq!(
                cursor.activity.total_transitions(),
                fresh.activity.total_transitions()
            );
            assert_eq!(cursor.config(), fresh.config());
            assert_eq!(cursor.model().config(), fresh.model().config());
        }
    }

    #[test]
    #[should_panic(expected = "does not match netlist")]
    fn mismatched_model_is_rejected() {
        let mut a = Netlist::new("a");
        let x = a.add_input("x");
        a.mark_output(x);
        let mut b = Netlist::new("b");
        let y = b.add_input("y");
        let z = b.add_output("z");
        b.add_gate("g", CellKind::Buf, &[y], z).unwrap();
        let l = lib();
        let model = Arc::new(CompiledModel::compile(&a, &l, SimConfig::default()));
        let _ = EventSimulator::with_model(&b, model);
    }

    #[test]
    fn calendar_queue_orders_same_bucket_and_rebases() {
        let mut q = CalendarQueue::<Value>::new();
        assert!(q.is_empty());
        let ev = |t: f64, seq: u64| Event {
            key: t.to_bits(),
            seq,
            net: NetId(0),
            value: Value::One,
        };
        // Same bucket, inserted out of order; equal times tie-break by seq.
        q.push(ev(30.0, 3));
        q.push(ev(10.0, 1));
        q.push(ev(10.0, 2));
        // Far beyond the window: overflow tier.
        let far = 1e9;
        q.push(ev(far, 4));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert_eq!(q.peek().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 3);
        // The far event is reachable (window re-bases onto it).
        let popped = q.pop().unwrap();
        assert_eq!(popped.seq, 4);
        assert_eq!(popped.time_ps(), far);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }
}
