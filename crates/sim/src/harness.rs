//! Simulation harnesses: a clocked testbench for synchronous netlists and a
//! schedule-driven testbench for desynchronized (latch-based) netlists.

use crate::activity::Activity;
use crate::engine::{EventSimulator, SimConfig};
use crate::model::CompiledModel;
use crate::stimulus::VectorSource;
use crate::waveform::WaveformSet;
use desync_mg::FlowTrace;
use desync_netlist::{CellLibrary, NetId, Netlist, NetlistError, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The observable result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRun {
    /// Per-register streams of captured values (for flow equivalence).
    pub flow_trace: FlowTrace,
    /// Switching-activity counters (for the power model).
    pub activity: Activity,
    /// Waveforms of watched nets.
    pub waveforms: WaveformSet,
    /// Number of clock cycles (synchronous) or scheduled iterations
    /// (asynchronous) executed.
    pub cycles: usize,
    /// Total simulated time in picoseconds.
    pub duration_ps: f64,
    /// Total number of events committed by the kernel during the run (the
    /// denominator of events/second throughput figures).
    pub committed_events: usize,
}

impl SimRun {
    /// Average energy-relevant event count per nanosecond; a quick proxy for
    /// activity density used in reports.
    pub fn transitions_per_ns(&self) -> f64 {
        if self.duration_ps <= 0.0 {
            return 0.0;
        }
        self.activity.total_transitions() as f64 / (self.duration_ps / 1000.0)
    }
}

pub(crate) fn value_to_word(value: Value) -> u64 {
    match value {
        Value::Zero => 0,
        Value::One => 1,
        Value::X => 2,
    }
}

/// Builds the per-register capture streams: captures are grouped by cell id
/// first (dense, chronological per cell), so each register's name is
/// resolved and cloned exactly once instead of once per captured value.
pub(crate) fn collect_flow_trace(
    netlist: &Netlist,
    captures: &[crate::engine::Capture],
) -> FlowTrace {
    let mut per_cell: Vec<Vec<u64>> = vec![Vec::new(); netlist.num_cells()];
    for cap in captures {
        per_cell[cap.cell.index()].push(value_to_word(cap.value));
    }
    let mut flow_trace = FlowTrace::new();
    for (index, values) in per_cell.into_iter().enumerate() {
        if !values.is_empty() {
            let name = netlist
                .cell(desync_netlist::CellId(index as u32))
                .name
                .to_string();
            flow_trace.extend_stream(name, values);
        }
    }
    flow_trace
}

/// A clocked testbench for flip-flop based (synchronous) netlists.
///
/// The testbench drives the single clock net with a 50 % duty cycle,
/// applies one input vector per cycle shortly after the rising edge, and
/// records every flip-flop capture.
#[derive(Debug)]
pub struct SyncTestbench<'a> {
    netlist: &'a Netlist,
    sim: EventSimulator<'a>,
    clock: NetId,
}

impl<'a> SyncTestbench<'a> {
    /// Creates a testbench for `netlist`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ClockError`] if the netlist does not have
    /// exactly one clock net.
    pub fn new(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        config: SimConfig,
    ) -> Result<Self, NetlistError> {
        let clock = netlist.single_clock()?;
        Ok(Self {
            netlist,
            sim: EventSimulator::new(netlist, library, config),
            clock,
        })
    }

    /// Like [`SyncTestbench::new`] but over a previously compiled `model`
    /// of `netlist`, so repeated testbenches share one topology compilation
    /// (see [`CompiledModel`]). Runs are bit-identical to
    /// [`SyncTestbench::new`] with the model's compile inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ClockError`] if the netlist does not have
    /// exactly one clock net.
    pub fn with_model(
        netlist: &'a Netlist,
        model: Arc<CompiledModel>,
    ) -> Result<Self, NetlistError> {
        let clock = netlist.single_clock()?;
        Ok(Self {
            netlist,
            sim: EventSimulator::with_model(netlist, model),
            clock,
        })
    }

    /// Starts waveform recording for the named nets.
    pub fn watch_named(&mut self, names: &[&str]) {
        self.sim.watch_named(names);
    }

    /// Runs `cycles` clock cycles with period `period_ps`, applying one
    /// vector from `source` per cycle, and returns the collected results.
    ///
    /// Registers are initialized to 0 and all non-clock primary inputs start
    /// at 0. Inputs for cycle *k* are applied shortly after rising edge *k*
    /// and are captured by the flip-flops at rising edge *k + 1*.
    pub fn run(&mut self, cycles: usize, period_ps: f64, source: &VectorSource) -> SimRun {
        let sim = &mut self.sim;
        sim.initialize_registers(Value::Zero);
        for &input in self.netlist.inputs() {
            if input != self.clock {
                sim.set(input, Value::Zero);
            }
        }
        sim.set(self.clock, Value::Zero);
        sim.settle(1_000_000);
        // The clock grid starts after the reset state has fully settled, so
        // the first rising edge can never race the initialization wave (the
        // settling time exceeds one period for register-dominated netlists
        // with very little logic).
        let start = sim.time();

        let input_offset = period_ps * 0.05;
        for cycle in 0..cycles {
            // Schedule relative to a fixed grid to keep the edges periodic.
            let base = start + (cycle as f64 + 1.0) * period_ps;
            sim.schedule(self.clock, Value::One, base);
            sim.schedule(self.clock, Value::Zero, base + period_ps * 0.5);
            for (net, value) in source.vector_for(cycle) {
                sim.schedule(net, value, base + input_offset);
            }
            sim.run_until(base + period_ps - 1.0);
        }
        // Let the final cycle settle.
        let end = start + (cycles as f64 + 1.0) * period_ps;
        sim.run_until(end);

        SimRun {
            flow_trace: collect_flow_trace(self.netlist, &sim.captures),
            activity: sim.activity.clone(),
            waveforms: sim.waveforms(),
            cycles,
            duration_ps: sim.time(),
            committed_events: sim.committed_events(),
        }
    }
}

/// Absolute-time enable (or arbitrary control) events driving the latch
/// enables of a desynchronized netlist.
///
/// The desynchronization flow produces this schedule from the timed
/// marked-graph model of the controller network: each `a+` / `a-` firing
/// becomes a rising / falling event on the corresponding enable net.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnableSchedule {
    events: Vec<(f64, NetId, Value)>,
}

impl EnableSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event: `net` switches to `value` at `time_ps`.
    pub fn push(&mut self, time_ps: f64, net: NetId, value: Value) {
        self.events.push((time_ps, net, value));
    }

    /// All events, sorted by time.
    pub fn sorted_events(&self) -> Vec<(f64, NetId, Value)> {
        let mut v = self.events.clone();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last event, or 0 for an empty schedule.
    pub fn horizon_ps(&self) -> f64 {
        self.events.iter().map(|e| e.0).fold(0.0, f64::max)
    }
}

impl FromIterator<(f64, NetId, Value)> for EnableSchedule {
    fn from_iter<I: IntoIterator<Item = (f64, NetId, Value)>>(iter: I) -> Self {
        Self {
            events: iter.into_iter().collect(),
        }
    }
}

/// A testbench for desynchronized, latch-based netlists.
///
/// The latch-enable waveforms are supplied externally (from the timed
/// marked-graph model of the handshake controllers); data inputs are applied
/// as absolute-time events.
#[derive(Debug)]
pub struct AsyncTestbench<'a> {
    netlist: &'a Netlist,
    sim: EventSimulator<'a>,
}

impl<'a> AsyncTestbench<'a> {
    /// Creates a testbench for a latch-based `netlist`.
    pub fn new(netlist: &'a Netlist, library: &'a CellLibrary, config: SimConfig) -> Self {
        Self {
            netlist,
            sim: EventSimulator::new(netlist, library, config),
        }
    }

    /// Like [`AsyncTestbench::new`] but over a previously compiled `model`
    /// of `netlist` — the sweep-point fast path: every protocol × margin
    /// point of a verification sweep simulates the same latch datapath, so
    /// they all bind their schedules onto one [`CompiledModel`].
    pub fn with_model(netlist: &'a Netlist, model: Arc<CompiledModel>) -> Self {
        Self {
            netlist,
            sim: EventSimulator::with_model(netlist, model),
        }
    }

    /// Starts waveform recording for the named nets.
    pub fn watch_named(&mut self, names: &[&str]) {
        self.sim.watch_named(names);
    }

    /// Runs the netlist under the given enable `schedule` and timed data
    /// `inputs` until `duration_ps`, returning the collected results.
    ///
    /// Registers are initialized to 0 and all primary inputs not driven by
    /// the schedule start at 0. `iterations` is recorded in the result as
    /// the logical cycle count (the caller knows how many handshake
    /// iterations the schedule encodes).
    pub fn run(
        &mut self,
        duration_ps: f64,
        iterations: usize,
        schedule: &EnableSchedule,
        inputs: &[(f64, NetId, Value)],
    ) -> SimRun {
        let sim = &mut self.sim;
        sim.initialize_registers(Value::Zero);
        for &input in self.netlist.inputs() {
            sim.set(input, Value::Zero);
        }
        sim.settle(1_000_000);

        for (t, net, value) in schedule.sorted_events() {
            sim.schedule(net, value, t.max(sim.time()));
        }
        let mut sorted_inputs: Vec<&(f64, NetId, Value)> = inputs.iter().collect();
        sorted_inputs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(t, net, value) in sorted_inputs {
            sim.schedule(net, value, t.max(sim.time()));
        }
        sim.run_until(duration_ps);

        SimRun {
            flow_trace: collect_flow_trace(self.netlist, &sim.captures),
            activity: sim.activity.clone(),
            waveforms: sim.waveforms(),
            cycles: iterations,
            duration_ps: sim.time(),
            committed_events: sim.committed_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellKind;

    fn lib() -> CellLibrary {
        CellLibrary::generic_90nm()
    }

    /// A 1-bit toggler: r.d = !r.q
    fn toggler() -> Netlist {
        let mut n = Netlist::new("toggler");
        let clk = n.add_input("clk");
        let q = n.add_net("q");
        let d = n.add_net("d");
        n.add_gate("inv", CellKind::Not, &[q], d).unwrap();
        n.add_dff("r", d, clk, q).unwrap();
        n.mark_output(q);
        n
    }

    #[test]
    fn sync_testbench_runs_toggler() {
        let n = toggler();
        let l = lib();
        let mut tb = SyncTestbench::new(&n, &l, SimConfig::default()).unwrap();
        tb.watch_named(&["clk", "q"]);
        let run = tb.run(10, 4_000.0, &VectorSource::constant(vec![]));
        assert_eq!(run.cycles, 10);
        assert!(run.duration_ps > 0.0);
        let stream = run.flow_trace.stream("r").unwrap();
        assert_eq!(stream.len(), 10);
        // Register starts at 0, so captures alternate 1,0,1,0,...
        for (i, &v) in stream.iter().enumerate() {
            assert_eq!(v, if i % 2 == 0 { 1 } else { 0 }, "capture {i}");
        }
        assert!(run.activity.total_transitions() > 0);
        assert!(run.transitions_per_ns() > 0.0);
        assert!(run.waveforms.get("clk").unwrap().len() >= 19);
    }

    #[test]
    fn sync_testbench_requires_single_clock() {
        let n = Netlist::new("empty");
        let l = lib();
        assert!(SyncTestbench::new(&n, &l, SimConfig::default()).is_err());
    }

    #[test]
    fn sync_pipeline_shifts_data() {
        // in -> r0 -> r1; stimulus alternates the input.
        let mut n = Netlist::new("shift2");
        let clk = n.add_input("clk");
        let din = n.add_input("din");
        let q0 = n.add_net("q0");
        let q1 = n.add_output("q1");
        n.add_dff("r0", din, clk, q0).unwrap();
        n.add_dff("r1", q0, clk, q1).unwrap();
        let l = lib();
        let mut tb = SyncTestbench::new(&n, &l, SimConfig::default()).unwrap();
        let stim = VectorSource::sequence(vec![vec![(din, Value::One)], vec![(din, Value::Zero)]]);
        let run = tb.run(8, 4_000.0, &stim);
        let s0 = run.flow_trace.stream("r0").unwrap();
        let s1 = run.flow_trace.stream("r1").unwrap();
        // r1 sees r0's stream delayed by one cycle.
        assert_eq!(&s1[1..], &s0[..s0.len() - 1]);
    }

    #[test]
    fn async_testbench_latch_pipeline() {
        // Two latches in series, enables driven by an explicit schedule.
        let mut n = Netlist::new("latch2");
        let en0 = n.add_input("en0");
        let en1 = n.add_input("en1");
        let din = n.add_input("din");
        let q0 = n.add_net("q0");
        let q1 = n.add_output("q1");
        n.add_latch("l0", din, en0, q0, true).unwrap();
        n.add_latch("l1", q0, en1, q1, true).unwrap();
        let l = lib();
        let mut tb = AsyncTestbench::new(&n, &l, SimConfig::default());
        let mut sched = EnableSchedule::new();
        // Alternate non-overlapping pulses: l0 open 1000-2000, l1 open 3000-4000, ...
        let mut inputs = Vec::new();
        for k in 0..4u32 {
            let base = 1000.0 + k as f64 * 4000.0;
            sched.push(base, en0, Value::One);
            sched.push(base + 1000.0, en0, Value::Zero);
            sched.push(base + 2000.0, en1, Value::One);
            sched.push(base + 3000.0, en1, Value::Zero);
            inputs.push((base - 500.0, din, Value::from_bool(k % 2 == 0)));
        }
        assert_eq!(sched.len(), 16);
        assert!(!sched.is_empty());
        assert!(sched.horizon_ps() > 0.0);
        let run = tb.run(20_000.0, 4, &sched, &inputs);
        let s0 = run.flow_trace.stream("l0").unwrap();
        let s1 = run.flow_trace.stream("l1").unwrap();
        assert_eq!(s0.len(), 4);
        assert_eq!(s1.len(), 4);
        // The second latch receives exactly the stream of the first.
        assert_eq!(s0, s1);
        assert_eq!(s0, &[1, 0, 1, 0]);
    }

    #[test]
    fn enable_schedule_from_iterator() {
        let sched: EnableSchedule = vec![(5.0, NetId(1), Value::One)].into_iter().collect();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.sorted_events()[0].1, NetId(1));
    }
}
