//! Bit-parallel (packed) simulation: 64 independent stimulus lanes per word.
//!
//! Classic parallel-pattern simulation observes that under matched delays the
//! event *schedule* of a gate-level run is stimulus-independent — only the
//! payloads differ between two runs of the same netlist. The packed kernel
//! exploits this: each net carries a [`PackedValue`] of 64 independent
//! 4-state lanes encoded as two `u64` bit-planes, every [`CellKind`] is
//! evaluated with branch-free word-wide logic, and one pass over the calendar
//! queue advances all 64 stimulus vectors at once.
//!
//! # Two-bit-plane encoding
//!
//! Lane *i* of a [`PackedValue`] is described by bit *i* of two planes,
//! forming an interval in the `Zero < X < One` information order:
//!
//! | value  | `lo` (definitely One) | `hi` (possibly One) |
//! |--------|-----------------------|---------------------|
//! | `Zero` | 0                     | 0                   |
//! | `One`  | 1                     | 1                   |
//! | `X`    | 0                     | 1                   |
//!
//! (`lo = 1, hi = 0` is unrepresentable by construction.) Under this
//! encoding the Kleene operators become plain word ops — `NOT` swaps and
//! complements the planes, `AND`/`OR` are per-plane `&`/`|` — and the
//! remaining kinds (`Xor`, `Mux2`, `AndOrInv`, latches, C-elements) compose
//! from plane masks ([`PackedValue::known_mask`], [`PackedValue::eq_mask`],
//! [`PackedValue::select`]). Every operator is verified lane-for-lane against
//! the scalar [`desync_netlist::value`] truth tables by exhaustive unit
//! tests; the scalar kernel stays the golden reference.
//!
//! # Bit-identity contract
//!
//! [`PackedSimulator`] reuses the scalar kernel's machinery unchanged — the
//! same [`CompiledModel`], the same calendar queue and integer time keys,
//! the same commit/CSR-walk skeleton — only the event payloads widen from
//! [`Value`] to [`PackedValue`]. A packed event is scheduled when *any* lane
//! departs from its projected value; on lanes where the payload equals the
//! projected value the event is invisible, exactly like the event the scalar
//! kernel would not have scheduled. Per-lane observables (captures with lane
//! masks, per-lane activity counters, per-lane waveform extraction with
//! change collapsing) therefore plane-extract to results bit-identical to 64
//! scalar runs — times, capture streams, activity counts and waveforms alike.
//! The property suite `desync-core/tests/sim_packed_golden.rs` pins this
//! across random circuits, all three handshake protocols and both harnesses.
//!
//! Lane counts below 64 are supported: the packed stimulus replicates its
//! last lane into the unused tail lanes (so they never create extra events)
//! and all per-lane accounting is masked to the live lanes.

use crate::activity::Activity;
use crate::engine::{CalendarQueue, Capture, Event, SimConfig};
use crate::harness::{collect_flow_trace, EnableSchedule, SimRun};
use crate::model::CompiledModel;
use crate::stimulus::PackedVectorSource;
use crate::waveform::{Waveform, WaveformSet};
use desync_netlist::{CellId, CellKind, CellLibrary, NetId, Netlist, NetlistError, Value};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Number of stimulus lanes one machine word carries.
pub const MAX_LANES: usize = 64;

/// 64 independent 4-state values in two bit-planes (see the
/// [module documentation](self) for the encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PackedValue {
    lo: u64,
    hi: u64,
}

impl PackedValue {
    /// The same scalar value in every lane.
    pub fn splat(value: Value) -> Self {
        match value {
            Value::Zero => Self { lo: 0, hi: 0 },
            Value::One => Self { lo: !0, hi: !0 },
            Value::X => Self { lo: 0, hi: !0 },
        }
    }

    /// All lanes `X` (the uninitialized state).
    pub fn all_x() -> Self {
        Self::splat(Value::X)
    }

    /// The scalar value in lane `lane` (0..64).
    pub fn lane(self, lane: usize) -> Value {
        let bit = 1u64 << lane;
        match (self.lo & bit != 0, self.hi & bit != 0) {
            (true, _) => Value::One,
            (false, true) => Value::X,
            (false, false) => Value::Zero,
        }
    }

    /// Sets lane `lane` to `value`.
    pub fn set_lane(&mut self, lane: usize, value: Value) {
        let bit = 1u64 << lane;
        let (lo, hi) = match value {
            Value::Zero => (false, false),
            Value::One => (true, true),
            Value::X => (false, true),
        };
        self.lo = if lo { self.lo | bit } else { self.lo & !bit };
        self.hi = if hi { self.hi | bit } else { self.hi & !bit };
    }

    /// Mask of lanes holding `One`.
    pub fn ones_mask(self) -> u64 {
        self.lo
    }

    /// Mask of lanes holding `Zero`.
    pub fn zeros_mask(self) -> u64 {
        !self.hi
    }

    /// Mask of lanes holding `X`.
    pub fn x_mask(self) -> u64 {
        self.hi & !self.lo
    }

    /// Mask of lanes holding a known (non-`X`) value.
    pub fn known_mask(self) -> u64 {
        !self.hi | self.lo
    }

    /// Mask of lanes where `self` and `other` differ.
    pub fn diff_mask(self, other: Self) -> u64 {
        (self.lo ^ other.lo) | (self.hi ^ other.hi)
    }

    /// Mask of lanes where `self` and `other` hold the same value
    /// (`X == X` included — exact equality, not Kleene equivalence).
    pub fn eq_mask(self, other: Self) -> u64 {
        !self.diff_mask(other)
    }

    /// Per-lane choice: lanes set in `mask` take `then`, the rest `other`.
    pub fn select(mask: u64, then: Self, other: Self) -> Self {
        Self {
            lo: (mask & then.lo) | (!mask & other.lo),
            hi: (mask & then.hi) | (!mask & other.hi),
        }
    }

    /// Lane-wise Kleene NOT: swap and complement the planes.
    #[allow(clippy::should_implement_trait)] // `impl Not` exists below; this is the named form
    pub fn not(self) -> Self {
        Self {
            lo: !self.hi,
            hi: !self.lo,
        }
    }

    /// Lane-wise Kleene AND (`Zero` dominates).
    pub fn and(self, other: Self) -> Self {
        Self {
            lo: self.lo & other.lo,
            hi: self.hi & other.hi,
        }
    }

    /// Lane-wise Kleene OR (`One` dominates).
    pub fn or(self, other: Self) -> Self {
        Self {
            lo: self.lo | other.lo,
            hi: self.hi | other.hi,
        }
    }

    /// Lane-wise Kleene XOR (`X` when either side is unknown).
    pub fn xor(self, other: Self) -> Self {
        let known = self.known_mask() & other.known_mask();
        let value = self.lo ^ other.lo;
        Self {
            lo: known & value,
            hi: (known & value) | !known,
        }
    }
}

impl std::ops::Not for PackedValue {
    type Output = PackedValue;

    fn not(self) -> PackedValue {
        PackedValue::not(self)
    }
}

/// Branch-free packed counterpart of [`desync_netlist::value::evaluate`]:
/// evaluates a combinational `kind` lane-wise over packed inputs.
pub fn packed_evaluate(kind: CellKind, inputs: &[PackedValue]) -> PackedValue {
    let input = |i: usize| inputs.get(i).copied().unwrap_or_else(PackedValue::all_x);
    match kind {
        CellKind::Const0 => PackedValue::splat(Value::Zero),
        CellKind::Const1 => PackedValue::splat(Value::One),
        CellKind::Buf | CellKind::Delay => input(0),
        CellKind::Not => input(0).not(),
        CellKind::And => inputs
            .iter()
            .fold(PackedValue::splat(Value::One), |acc, &v| acc.and(v)),
        CellKind::Nand => packed_evaluate(CellKind::And, inputs).not(),
        CellKind::Or => inputs
            .iter()
            .fold(PackedValue::splat(Value::Zero), |acc, &v| acc.or(v)),
        CellKind::Nor => packed_evaluate(CellKind::Or, inputs).not(),
        CellKind::Xor => inputs
            .iter()
            .fold(PackedValue::splat(Value::Zero), |acc, &v| acc.xor(v)),
        CellKind::Xnor => packed_evaluate(CellKind::Xor, inputs).not(),
        CellKind::Mux2 => {
            let (sel, a, b) = (input(0), input(1), input(2));
            // Known selector lanes route; unknown ones resolve to the data
            // only where both data inputs agree exactly (else X).
            let routed = PackedValue::select(sel.ones_mask(), b, a);
            let agree = a.eq_mask(b);
            let unknown_sel = PackedValue::select(agree, a, PackedValue::all_x());
            PackedValue::select(sel.known_mask(), routed, unknown_sel)
        }
        CellKind::AndOrInv => {
            let (a, b, c, d) = (input(0), input(1), input(2), input(3));
            a.and(b).or(c.and(d)).not()
        }
        // Sequential kinds have dedicated evaluation paths.
        CellKind::Dff | CellKind::LatchLow | CellKind::LatchHigh | CellKind::CElement => {
            PackedValue::all_x()
        }
    }
}

/// Packed counterpart of [`desync_netlist::value::evaluate_c_element`]:
/// lanes where all inputs agree on a known value take it, the rest hold
/// `previous`.
pub fn packed_evaluate_c_element(inputs: &[PackedValue], previous: PackedValue) -> PackedValue {
    let Some((&first, rest)) = inputs.split_first() else {
        return previous;
    };
    let agree = rest.iter().fold(!0u64, |acc, &v| acc & v.eq_mask(first));
    PackedValue::select(agree & first.known_mask(), first, previous)
}

/// Packed counterpart of [`desync_netlist::value::evaluate_latch`]: lanes
/// with a transparent enable follow `data`, opaque lanes hold `stored`, and
/// lanes with an unknown enable resolve to `stored` only where `data`
/// already equals it (else `X`).
pub fn packed_evaluate_latch(
    data: PackedValue,
    enable: PackedValue,
    stored: PackedValue,
    transparent_high: bool,
) -> PackedValue {
    let transparent = if transparent_high {
        enable.ones_mask()
    } else {
        enable.zeros_mask()
    };
    let known = PackedValue::select(transparent, data, stored);
    let unknown_en = PackedValue::select(data.eq_mask(stored), stored, PackedValue::all_x());
    PackedValue::select(enable.known_mask(), known, unknown_en)
}

/// One packed register capture: the packed data value latched by a
/// sequential cell, together with the mask of lanes that actually saw a
/// capturing edge at this instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackedCapture {
    /// Simulation time of the capture, in picoseconds.
    pub time_ps: f64,
    /// The sequential cell that captured.
    pub cell: CellId,
    /// The captured packed data value (meaningful on `lanes` only).
    pub value: PackedValue,
    /// Mask of live lanes that captured at this edge.
    pub lanes: u64,
}

/// The bit-parallel sibling of [`crate::EventSimulator`]: a per-run cursor
/// over a shared [`CompiledModel`] that advances up to 64 independent
/// stimulus lanes per committed event.
///
/// See the [module documentation](self) for the encoding and the
/// bit-identity contract. The scalar kernel is the golden reference; this
/// kernel trades one word-wide pass for 64 scalar passes on equivalence
/// campaigns.
#[derive(Debug, Clone)]
pub struct PackedSimulator<'a> {
    netlist: &'a Netlist,
    model: Arc<CompiledModel>,
    lanes: usize,
    /// Mask of live lanes (`lanes` low bits); tail lanes replicate the last
    /// live lane and are excluded from all per-lane accounting.
    lane_mask: u64,
    values: Vec<PackedValue>,
    /// Last *scheduled* packed value per net (see the scalar kernel's
    /// `projected` field for the rationale).
    projected: Vec<PackedValue>,
    queue: CalendarQueue<PackedValue>,
    seq: u64,
    time: f64,
    duration_ps: f64,
    committed_words: usize,
    /// Per-lane committed-event counters (events visible to that lane).
    lane_committed: Vec<u64>,
    /// Lane-major per-net switching counters:
    /// `lane_transitions[lane * num_nets + net]`.
    lane_transitions: Vec<u64>,
    watched: Vec<u64>,
    watch_slot: Vec<u32>,
    /// Raw packed change records of watched nets; per-lane waveforms are
    /// extracted (with change collapsing) at export time.
    waves: Vec<(NetId, Vec<(f64, PackedValue)>)>,
    scratch: Vec<PackedValue>,
    /// Packed register captures in chronological order.
    pub captures: Vec<PackedCapture>,
}

impl<'a> PackedSimulator<'a> {
    /// Creates a packed simulator with `lanes` live stimulus lanes,
    /// compiling a private model.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64`.
    pub fn new(
        netlist: &'a Netlist,
        library: &CellLibrary,
        config: SimConfig,
        lanes: usize,
    ) -> Self {
        Self::with_model(
            netlist,
            Arc::new(CompiledModel::compile(netlist, library, config)),
            lanes,
        )
    }

    /// Creates a packed cursor over a previously compiled `model` — the
    /// exact same models the scalar kernel compiles and `desync-core`
    /// caches; nothing about [`CompiledModel`] is lane-aware.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not in `1..=64` or the model's dimensions do not
    /// match `netlist`.
    pub fn with_model(netlist: &'a Netlist, model: Arc<CompiledModel>, lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "packed simulation carries 1..=64 lanes, got {lanes}"
        );
        assert!(
            model.num_nets() == netlist.num_nets() && model.num_cells() == netlist.num_cells(),
            "compiled model ({} nets, {} cells) does not match netlist `{}` ({} nets, {} cells)",
            model.num_nets(),
            model.num_cells(),
            netlist.name(),
            netlist.num_nets(),
            netlist.num_cells(),
        );
        let num_nets = model.num_nets();
        let lane_mask = if lanes == MAX_LANES {
            !0
        } else {
            (1u64 << lanes) - 1
        };
        let mut sim = Self {
            netlist,
            model,
            lanes,
            lane_mask,
            values: vec![PackedValue::all_x(); num_nets],
            projected: vec![PackedValue::all_x(); num_nets],
            queue: CalendarQueue::new(),
            seq: 0,
            time: 0.0,
            duration_ps: 0.0,
            committed_words: 0,
            lane_committed: vec![0; lanes],
            lane_transitions: vec![0; lanes * num_nets],
            watched: vec![0u64; num_nets.div_ceil(64)],
            watch_slot: vec![u32::MAX; num_nets],
            waves: Vec::new(),
            scratch: Vec::new(),
            captures: Vec::new(),
        };
        // Same constant seeding order as the scalar cursor: the order fixes
        // the event sequence numbers.
        for i in 0..sim.model.const_seeds.len() {
            let (net, value) = sim.model.const_seeds[i];
            sim.schedule(net, PackedValue::splat(value), 0.0);
        }
        sim
    }

    /// Number of live stimulus lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask of the live lanes.
    pub fn lane_mask(&self) -> u64 {
        self.lane_mask
    }

    /// The compiled model this cursor runs over.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The current simulation time in picoseconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The configuration in use.
    pub fn config(&self) -> SimConfig {
        self.model.config
    }

    /// Number of committed *word* events (one count per committed event,
    /// regardless of how many lanes it changed) — the work the kernel
    /// actually did.
    pub fn committed_words(&self) -> usize {
        self.committed_words
    }

    /// Number of events visible to lane `lane` — bit-identical to the
    /// committed-event count of the corresponding scalar run.
    pub fn lane_committed_events(&self, lane: usize) -> usize {
        self.lane_committed[lane] as usize
    }

    /// The current packed value of a net.
    pub fn value(&self, net: NetId) -> PackedValue {
        self.values[net.index()]
    }

    /// The current value of a net in lane `lane`.
    pub fn lane_value(&self, net: NetId, lane: usize) -> Value {
        self.value(net).lane(lane)
    }

    /// Starts recording a waveform for `net`.
    pub fn watch(&mut self, net: NetId) {
        let index = net.index();
        if self.watch_slot[index] == u32::MAX {
            self.watched[index / 64] |= 1u64 << (index % 64);
            self.watch_slot[index] = self.waves.len() as u32;
            self.waves.push((net, Vec::new()));
        }
    }

    /// Starts recording waveforms for every net whose name is in `names`.
    pub fn watch_named(&mut self, names: &[&str]) {
        for &name in names {
            if let Some(net) = self.netlist.find_net(name) {
                self.watch(net);
            }
        }
    }

    /// Schedules a packed value change on `net` at absolute time `at_ps`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ps` is not finite or lies in the past, exactly like the
    /// scalar [`crate::EventSimulator::schedule`].
    pub fn schedule(&mut self, net: NetId, value: PackedValue, at_ps: f64) {
        assert!(
            at_ps.is_finite(),
            "cannot schedule an event at non-finite time {at_ps} ps on net `{}`",
            self.netlist.net(net).name
        );
        assert!(
            at_ps + 1e-9 >= self.time,
            "cannot schedule an event in the past ({at_ps} < {})",
            self.time
        );
        self.seq += 1;
        self.projected[net.index()] = value;
        let time = at_ps.max(self.time) + 0.0;
        self.queue.push(Event {
            key: time.to_bits(),
            seq: self.seq,
            net,
            value,
        });
    }

    /// Drives a net to a packed value at the current time.
    pub fn set(&mut self, net: NetId, value: PackedValue) {
        self.schedule(net, value, self.time);
    }

    /// Forces the output nets of all flip-flops and latches to `value` in
    /// every lane at the current time.
    pub fn initialize_registers(&mut self, value: Value) {
        let packed = PackedValue::splat(value);
        for i in 0..self.model.register_outputs.len() {
            let output = self.model.register_outputs[i];
            self.schedule(output, packed, self.time);
        }
    }

    /// Runs until the event queue is empty or the next event lies beyond
    /// `until_ps`; the simulation time is then advanced to `until_ps`.
    /// Returns the number of committed word events.
    pub fn run_until(&mut self, until_ps: f64) -> usize {
        let mut committed = 0usize;
        while let Some(next) = self.queue.peek() {
            if next.time_ps() > until_ps {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            self.time = event.time_ps();
            committed += self.commit(event);
        }
        self.time = self.time.max(until_ps);
        self.duration_ps = self.time;
        committed
    }

    /// Runs until the event queue drains completely, with a safety cap of
    /// `max_events` committed word events. Returns the committed count.
    pub fn settle(&mut self, max_events: usize) -> usize {
        let mut committed = 0usize;
        while committed < max_events {
            let Some(event) = self.queue.pop() else { break };
            self.time = event.time_ps();
            committed += self.commit(event);
        }
        self.duration_ps = self.time;
        committed
    }

    fn commit(&mut self, event: Event<PackedValue>) -> usize {
        let net = event.net.index();
        let old = self.values[net];
        let changed = old.diff_mask(event.value);
        if changed == 0 {
            return 0;
        }
        self.values[net] = event.value;
        self.committed_words += 1;
        let mut visible = changed & self.lane_mask;
        while visible != 0 {
            let lane = visible.trailing_zeros() as usize;
            self.lane_committed[lane] += 1;
            visible &= visible - 1;
        }
        // Transitions out of X are not switching activity (scalar contract).
        let mut toggled = changed & self.lane_mask & !old.x_mask();
        while toggled != 0 {
            let lane = toggled.trailing_zeros() as usize;
            self.lane_transitions[lane * self.model.num_nets + net] += 1;
            toggled &= toggled - 1;
        }
        if self.watched[net / 64] & (1u64 << (net % 64)) != 0 {
            let slot = self.watch_slot[net] as usize;
            self.waves[slot].1.push((self.time, event.value));
        }
        let start = self.model.reader_offsets[net] as usize;
        let end = self.model.reader_offsets[net + 1] as usize;
        for i in start..end {
            let cell_id = self.model.reader_cells[i];
            self.evaluate_cell(cell_id, event.net, old, event.value);
        }
        1
    }

    fn gather_inputs(&mut self, ci: usize) {
        let start = self.model.input_offsets[ci] as usize;
        let end = self.model.input_offsets[ci + 1] as usize;
        self.scratch.clear();
        let (scratch, values, model) = (&mut self.scratch, &self.values, &self.model);
        scratch.extend(
            model.input_nets[start..end]
                .iter()
                .map(|n| values[n.index()]),
        );
    }

    fn evaluate_cell(
        &mut self,
        cell_id: CellId,
        changed: NetId,
        old: PackedValue,
        new: PackedValue,
    ) {
        let ci = cell_id.index();
        let kind = self.model.cell_kind[ci];
        let delay = self.model.cell_delay[ci];
        let pins = self.model.input_offsets[ci] as usize;
        match kind {
            CellKind::Dff => {
                let clk = self.model.input_nets[pins + 1];
                if changed == clk {
                    // Rising-edge lanes: clock became One where it was not.
                    let rising = new.ones_mask() & !old.ones_mask();
                    if rising != 0 {
                        let d = self.values[self.model.input_nets[pins].index()];
                        let output = self.model.cell_output[ci];
                        let captured = rising & self.lane_mask;
                        if captured != 0 {
                            self.captures.push(PackedCapture {
                                time_ps: self.time,
                                cell: cell_id,
                                value: d,
                                lanes: captured,
                            });
                        }
                        // Non-rising lanes keep their projected value, so
                        // the event is invisible to them.
                        let held = self.projected[output.index()];
                        let payload = PackedValue::select(rising, d, held);
                        self.schedule(output, payload, self.time + delay);
                    }
                }
            }
            CellKind::LatchLow | CellKind::LatchHigh => {
                let transparent_high = kind == CellKind::LatchHigh;
                let d = self.values[self.model.input_nets[pins].index()];
                let enable_net = self.model.input_nets[pins + 1];
                let en = self.values[enable_net.index()];
                let output = self.model.cell_output[ci];
                let stored = self.projected[output.index()];
                let q = packed_evaluate_latch(d, en, stored, transparent_high);
                if q.diff_mask(stored) != 0 {
                    self.schedule(output, q, self.time + delay);
                }
                // Closing enable edges capture the current data value:
                // new == closing && old != closing && old != X, per lane.
                if changed == enable_net {
                    let (closing_new, closing_old) = if transparent_high {
                        (new.zeros_mask(), old.zeros_mask())
                    } else {
                        (new.ones_mask(), old.ones_mask())
                    };
                    let captured = closing_new & !closing_old & !old.x_mask() & self.lane_mask;
                    if captured != 0 {
                        self.captures.push(PackedCapture {
                            time_ps: self.time,
                            cell: cell_id,
                            value: d,
                            lanes: captured,
                        });
                    }
                }
            }
            CellKind::CElement => {
                self.gather_inputs(ci);
                let output = self.model.cell_output[ci];
                let stored = self.projected[output.index()];
                let q = packed_evaluate_c_element(&self.scratch, stored);
                if q.diff_mask(stored) != 0 {
                    self.schedule(output, q, self.time + delay);
                }
            }
            kind => {
                self.gather_inputs(ci);
                let output = self.model.cell_output[ci];
                let q = packed_evaluate(kind, &self.scratch);
                if q.diff_mask(self.projected[output.index()]) != 0 {
                    self.schedule(output, q, self.time + delay);
                }
            }
        }
    }

    /// Extracts lane `lane`'s switching-activity counters — bit-identical
    /// to the `activity` of the corresponding scalar run.
    pub fn lane_activity(&self, lane: usize) -> Activity {
        let nets = self.model.num_nets;
        Activity {
            transitions: self.lane_transitions[lane * nets..(lane + 1) * nets].to_vec(),
            duration_ps: self.duration_ps,
        }
    }

    /// Extracts lane `lane`'s capture stream as scalar [`Capture`]s.
    pub fn lane_captures(&self, lane: usize) -> Vec<Capture> {
        let bit = 1u64 << lane;
        self.captures
            .iter()
            .filter(|cap| cap.lanes & bit != 0)
            .map(|cap| Capture {
                time_ps: cap.time_ps,
                cell: cap.cell,
                value: cap.value.lane(lane),
            })
            .collect()
    }

    /// Extracts lane `lane`'s waveforms for all watched nets.
    ///
    /// Packed change records are collapsed per lane: a record whose lane
    /// value equals the previous one is a change on *other* lanes only and
    /// is skipped, which reproduces the scalar recording exactly.
    pub fn lane_waveforms(&self, lane: usize) -> WaveformSet {
        let mut set = WaveformSet::new();
        for (net, changes) in &self.waves {
            let mut wave = Waveform::new();
            let mut previous = Value::X;
            for &(time_ps, packed) in changes {
                let value = packed.lane(lane);
                if value != previous {
                    wave.push(time_ps, value);
                    previous = value;
                }
            }
            set.insert(self.netlist.net(*net).name.to_string(), wave);
        }
        set
    }

    /// Extracts lane `lane` as a full scalar [`SimRun`] with `cycles`
    /// recorded as the logical cycle count.
    pub fn lane_run(&self, lane: usize, cycles: usize) -> SimRun {
        SimRun {
            flow_trace: collect_flow_trace(self.netlist, &self.lane_captures(lane)),
            activity: self.lane_activity(lane),
            waveforms: self.lane_waveforms(lane),
            cycles,
            duration_ps: self.duration_ps,
            committed_events: self.lane_committed_events(lane),
        }
    }
}

/// The observable result of one packed run: every lane extracted to a
/// scalar [`SimRun`], plus the word-level work the kernel actually did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedSimRun {
    /// One extracted scalar run per live lane, bit-identical to running the
    /// scalar kernel with that lane's stimulus.
    pub lane_runs: Vec<SimRun>,
    /// Number of committed word events (the kernel's real work; each word
    /// event advances all lanes at once).
    pub word_committed_events: usize,
}

impl PackedSimRun {
    /// Number of live lanes.
    pub fn lanes(&self) -> usize {
        self.lane_runs.len()
    }

    /// The extracted scalar run of lane `lane`.
    pub fn lane(&self, lane: usize) -> &SimRun {
        &self.lane_runs[lane]
    }

    /// Total scalar-equivalent committed events across all lanes — what 64
    /// scalar runs would have committed; the numerator of the packed
    /// speedup.
    pub fn lane_committed_events(&self) -> usize {
        self.lane_runs.iter().map(|run| run.committed_events).sum()
    }
}

fn collect_packed_run(sim: &PackedSimulator<'_>, cycles: usize) -> PackedSimRun {
    PackedSimRun {
        lane_runs: (0..sim.lanes())
            .map(|lane| sim.lane_run(lane, cycles))
            .collect(),
        word_committed_events: sim.committed_words(),
    }
}

/// The packed sibling of [`crate::SyncTestbench`]: drives the clock and a
/// [`PackedVectorSource`] of up to 64 stimulus lanes through one packed run.
///
/// The drive script is byte-for-byte the scalar testbench's (registers to
/// 0, inputs to 0, settle, then a fixed clock grid with vectors shortly
/// after each rising edge), with control nets broadcast across lanes — so
/// each extracted lane is bit-identical to a scalar run with that lane's
/// stimulus.
#[derive(Debug)]
pub struct PackedSyncTestbench<'a> {
    netlist: &'a Netlist,
    sim: PackedSimulator<'a>,
    clock: NetId,
}

impl<'a> PackedSyncTestbench<'a> {
    /// Creates a packed testbench for `netlist` with `lanes` stimulus lanes.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ClockError`] if the netlist does not have
    /// exactly one clock net.
    pub fn new(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        config: SimConfig,
        lanes: usize,
    ) -> Result<Self, NetlistError> {
        let clock = netlist.single_clock()?;
        Ok(Self {
            netlist,
            sim: PackedSimulator::new(netlist, library, config, lanes),
            clock,
        })
    }

    /// Like [`PackedSyncTestbench::new`] but over a previously compiled
    /// `model` (the same models the scalar harness compiles and caches).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ClockError`] if the netlist does not have
    /// exactly one clock net.
    pub fn with_model(
        netlist: &'a Netlist,
        model: Arc<CompiledModel>,
        lanes: usize,
    ) -> Result<Self, NetlistError> {
        let clock = netlist.single_clock()?;
        Ok(Self {
            netlist,
            sim: PackedSimulator::with_model(netlist, model, lanes),
            clock,
        })
    }

    /// Starts waveform recording for the named nets.
    pub fn watch_named(&mut self, names: &[&str]) {
        self.sim.watch_named(names);
    }

    /// Runs `cycles` clock cycles with period `period_ps`, applying one
    /// packed vector from `source` per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `source` does not carry exactly this testbench's lane
    /// count.
    pub fn run(
        &mut self,
        cycles: usize,
        period_ps: f64,
        source: &PackedVectorSource,
    ) -> PackedSimRun {
        assert_eq!(
            source.lanes(),
            self.sim.lanes(),
            "stimulus lane count does not match the packed testbench"
        );
        let sim = &mut self.sim;
        sim.initialize_registers(Value::Zero);
        for &input in self.netlist.inputs() {
            if input != self.clock {
                sim.set(input, PackedValue::splat(Value::Zero));
            }
        }
        sim.set(self.clock, PackedValue::splat(Value::Zero));
        sim.settle(1_000_000);
        let start = sim.time();

        let input_offset = period_ps * 0.05;
        for cycle in 0..cycles {
            let base = start + (cycle as f64 + 1.0) * period_ps;
            sim.schedule(self.clock, PackedValue::splat(Value::One), base);
            sim.schedule(
                self.clock,
                PackedValue::splat(Value::Zero),
                base + period_ps * 0.5,
            );
            for (net, value) in source.packed_vector_for(cycle) {
                sim.schedule(net, value, base + input_offset);
            }
            sim.run_until(base + period_ps - 1.0);
        }
        let end = start + (cycles as f64 + 1.0) * period_ps;
        sim.run_until(end);

        collect_packed_run(sim, cycles)
    }
}

/// The packed sibling of [`crate::AsyncTestbench`]: drives a latch-based
/// (desynchronized) netlist under an externally supplied enable schedule
/// (broadcast across lanes) and per-lane packed data inputs.
#[derive(Debug)]
pub struct PackedAsyncTestbench<'a> {
    netlist: &'a Netlist,
    sim: PackedSimulator<'a>,
}

impl<'a> PackedAsyncTestbench<'a> {
    /// Creates a packed testbench for a latch-based `netlist` with `lanes`
    /// stimulus lanes.
    pub fn new(
        netlist: &'a Netlist,
        library: &'a CellLibrary,
        config: SimConfig,
        lanes: usize,
    ) -> Self {
        Self {
            netlist,
            sim: PackedSimulator::new(netlist, library, config, lanes),
        }
    }

    /// Like [`PackedAsyncTestbench::new`] but over a previously compiled
    /// `model` — the campaign fast path: all 64 lanes of every campaign
    /// point bind onto one compiled latch datapath.
    pub fn with_model(netlist: &'a Netlist, model: Arc<CompiledModel>, lanes: usize) -> Self {
        Self {
            netlist,
            sim: PackedSimulator::with_model(netlist, model, lanes),
        }
    }

    /// Starts waveform recording for the named nets.
    pub fn watch_named(&mut self, names: &[&str]) {
        self.sim.watch_named(names);
    }

    /// Runs the netlist under the given enable `schedule` (broadcast) and
    /// timed packed data `inputs` until `duration_ps`.
    ///
    /// The drive script matches the scalar [`crate::AsyncTestbench::run`]
    /// exactly: `inputs` must be listed in the same order the scalar harness
    /// would receive them, as the stable time sort preserves that order
    /// among equal-time events (it fixes the event sequence numbers).
    pub fn run(
        &mut self,
        duration_ps: f64,
        iterations: usize,
        schedule: &EnableSchedule,
        inputs: &[(f64, NetId, PackedValue)],
    ) -> PackedSimRun {
        let sim = &mut self.sim;
        sim.initialize_registers(Value::Zero);
        for &input in self.netlist.inputs() {
            sim.set(input, PackedValue::splat(Value::Zero));
        }
        sim.settle(1_000_000);

        for (t, net, value) in schedule.sorted_events() {
            sim.schedule(net, PackedValue::splat(value), t.max(sim.time()));
        }
        let mut sorted_inputs: Vec<&(f64, NetId, PackedValue)> = inputs.iter().collect();
        sorted_inputs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(t, net, value) in sorted_inputs {
            sim.schedule(net, value, t.max(sim.time()));
        }
        sim.run_until(duration_ps);

        collect_packed_run(sim, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SyncTestbench;
    use crate::stimulus::VectorSource;
    use desync_netlist::value::{evaluate, evaluate_c_element, evaluate_latch};

    const VALUES: [Value; 3] = [Value::Zero, Value::One, Value::X];

    /// Packs one scalar combination per lane (combination `lane`, base-3
    /// digits indexing `VALUES`), returning per-lane scalar inputs alongside.
    fn pack_combinations(arity: usize) -> (Vec<PackedValue>, Vec<Vec<Value>>) {
        let combos = 3usize.pow(arity as u32);
        assert!(combos <= MAX_LANES);
        let mut packed = vec![PackedValue::splat(Value::Zero); arity];
        let mut scalar = Vec::with_capacity(combos);
        for lane in 0..combos {
            let mut digits = lane;
            let mut row = Vec::with_capacity(arity);
            for input in packed.iter_mut() {
                let value = VALUES[digits % 3];
                digits /= 3;
                input.set_lane(lane, value);
                row.push(value);
            }
            scalar.push(row);
        }
        // Unused tail lanes replicate the last combination.
        for input in packed.iter_mut() {
            let last = input.lane(combos - 1);
            for lane in combos..MAX_LANES {
                input.set_lane(lane, last);
            }
        }
        (packed, scalar)
    }

    #[test]
    fn encoding_round_trips_every_value() {
        for &value in &VALUES {
            let splat = PackedValue::splat(value);
            for lane in 0..MAX_LANES {
                assert_eq!(splat.lane(lane), value);
            }
            let mut one_lane = PackedValue::splat(Value::Zero);
            one_lane.set_lane(17, value);
            assert_eq!(one_lane.lane(17), value);
            assert_eq!(one_lane.lane(16), Value::Zero);
        }
        let mut v = PackedValue::all_x();
        v.set_lane(3, Value::One);
        v.set_lane(3, Value::Zero);
        assert_eq!(v.lane(3), Value::Zero);
        assert_eq!(v.lane(4), Value::X);
    }

    #[test]
    fn masks_partition_the_lanes() {
        let mut v = PackedValue::splat(Value::Zero);
        v.set_lane(1, Value::One);
        v.set_lane(2, Value::X);
        assert_eq!(v.ones_mask(), 0b010);
        assert_eq!(v.x_mask(), 0b100);
        assert_eq!(v.zeros_mask() & 0b111, 0b001);
        assert_eq!(v.known_mask() & 0b111, 0b011);
        assert_eq!(v.diff_mask(v), 0);
        let w = PackedValue::splat(Value::Zero);
        assert_eq!(v.diff_mask(w), 0b110);
        assert_eq!(v.eq_mask(w) & 0b111, 0b001);
    }

    #[test]
    fn word_ops_match_scalar_truth_tables_exhaustively() {
        let (packed, scalar) = pack_combinations(2);
        let (a, b) = (packed[0], packed[1]);
        for (lane, row) in scalar.iter().enumerate() {
            let (x, y) = (row[0], row[1]);
            assert_eq!(a.not().lane(lane), x.not(), "not {x:?}");
            assert_eq!(a.and(b).lane(lane), x.and(y), "and {x:?} {y:?}");
            assert_eq!(a.or(b).lane(lane), x.or(y), "or {x:?} {y:?}");
            assert_eq!(a.xor(b).lane(lane), x.xor(y), "xor {x:?} {y:?}");
        }
    }

    #[test]
    fn packed_evaluate_matches_scalar_for_every_kind_and_combination() {
        use CellKind::*;
        for kind in [
            Const0, Const1, Buf, Delay, Not, And, Nand, Or, Nor, Xor, Xnor, Mux2, AndOrInv,
        ] {
            for arity in 0..=3usize {
                let (packed, scalar) = pack_combinations(arity);
                let result = packed_evaluate(kind, &packed);
                for (lane, row) in scalar.iter().enumerate() {
                    assert_eq!(
                        result.lane(lane),
                        evaluate(kind, row),
                        "{kind:?} arity {arity} inputs {row:?}"
                    );
                }
            }
        }
        // AndOrInv takes four inputs: exercise the full arity separately
        // (3^4 = 81 combinations, split over two words).
        for base in [0usize, 64] {
            let mut packed = vec![PackedValue::splat(Value::Zero); 4];
            let mut scalar = Vec::new();
            for slot in 0..MAX_LANES.min(81 - base) {
                let mut digits = base + slot;
                let mut row = Vec::with_capacity(4);
                for input in packed.iter_mut() {
                    let value = VALUES[digits % 3];
                    digits /= 3;
                    input.set_lane(slot, value);
                    row.push(value);
                }
                scalar.push(row);
            }
            let result = packed_evaluate(CellKind::AndOrInv, &packed);
            for (slot, row) in scalar.iter().enumerate() {
                assert_eq!(result.lane(slot), evaluate(CellKind::AndOrInv, row));
            }
        }
    }

    #[test]
    fn packed_c_element_matches_scalar() {
        for &previous in &VALUES {
            let prev = PackedValue::splat(previous);
            for arity in 0..=3usize {
                let (packed, scalar) = pack_combinations(arity);
                let result = packed_evaluate_c_element(&packed, prev);
                for (lane, row) in scalar.iter().enumerate() {
                    assert_eq!(
                        result.lane(lane),
                        evaluate_c_element(row, previous),
                        "c-element inputs {row:?} previous {previous:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_latch_matches_scalar() {
        for transparent_high in [false, true] {
            let (packed, scalar) = pack_combinations(3);
            let (d, en, stored) = (packed[0], packed[1], packed[2]);
            let result = packed_evaluate_latch(d, en, stored, transparent_high);
            for (lane, row) in scalar.iter().enumerate() {
                assert_eq!(
                    result.lane(lane),
                    evaluate_latch(row[0], row[1], row[2], transparent_high),
                    "latch d={:?} en={:?} stored={:?} th={transparent_high}",
                    row[0],
                    row[1],
                    row[2],
                );
            }
        }
    }

    #[test]
    fn packed_sync_testbench_lanes_match_scalar_runs() {
        // A toggler with a data input: in -> r0 -> r1, watched waveforms.
        let mut n = Netlist::new("shift2");
        let clk = n.add_input("clk");
        let din = n.add_input("din");
        let q0 = n.add_net("q0");
        let q1 = n.add_output("q1");
        n.add_dff("r0", din, clk, q0).unwrap();
        n.add_dff("r1", q0, clk, q1).unwrap();
        let library = CellLibrary::generic_90nm();

        let lanes: Vec<VectorSource> = (0..5)
            .map(|seed| VectorSource::pseudo_random(vec![din], seed as u64 + 1))
            .collect();
        let packed_source = PackedVectorSource::interleave(lanes.clone());

        let mut packed_tb =
            PackedSyncTestbench::new(&n, &library, SimConfig::default(), lanes.len()).unwrap();
        packed_tb.watch_named(&["clk", "q1"]);
        let packed_run = packed_tb.run(12, 4_000.0, &packed_source);
        assert_eq!(packed_run.lanes(), lanes.len());
        assert!(packed_run.word_committed_events > 0);
        assert!(packed_run.lane_committed_events() >= packed_run.word_committed_events);

        for (lane, source) in lanes.iter().enumerate() {
            let mut tb = SyncTestbench::new(&n, &library, SimConfig::default()).unwrap();
            tb.watch_named(&["clk", "q1"]);
            let scalar_run = tb.run(12, 4_000.0, source);
            assert_eq!(packed_run.lane(lane), &scalar_run, "lane {lane}");
        }
    }

    #[test]
    #[should_panic(expected = "1..=64 lanes")]
    fn zero_lanes_is_rejected() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        n.mark_output(a);
        let library = CellLibrary::generic_90nm();
        let _ = PackedSimulator::new(&n, &library, SimConfig::default(), 0);
    }
}
