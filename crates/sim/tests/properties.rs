//! Property-based tests of the event-driven simulator: determinism,
//! equivalence of gate-level simulation with direct boolean evaluation on
//! combinational netlists, and correct shift-register behaviour of the
//! synchronous testbench.

use desync_netlist::value::evaluate;
use desync_netlist::{CellKind, CellLibrary, NetId, Netlist, Value};
use desync_sim::{EventSimulator, SimConfig, SyncTestbench, VectorSource};
use proptest::prelude::*;

/// A random purely combinational netlist plus a reference evaluation
/// function.
fn random_combinational(seed: u64, gates: usize) -> (Netlist, Vec<NetId>) {
    let mut n = Netlist::new(format!("sim_prop_{seed}"));
    let inputs: Vec<NetId> = (0..4).map(|i| n.add_input(format!("i{i}"))).collect();
    let mut nets = inputs.clone();
    let kinds = [
        CellKind::And,
        CellKind::Or,
        CellKind::Xor,
        CellKind::Nand,
        CellKind::Nor,
        CellKind::Not,
        CellKind::Mux2,
    ];
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for g in 0..gates {
        let kind = kinds[(next() as usize) % kinds.len()];
        let arity = kind.fixed_arity().unwrap_or(2 + (next() as usize) % 2);
        let ins: Vec<_> = (0..arity)
            .map(|_| nets[(next() as usize) % nets.len()])
            .collect();
        let out = n.add_net(format!("w{g}"));
        n.add_gate(format!("g{g}"), kind, &ins, out).unwrap();
        nets.push(out);
    }
    let out = *nets.last().unwrap();
    n.mark_output(out);
    (n, inputs)
}

/// Reference: evaluate the combinational netlist directly in topological
/// order.
fn reference_evaluate(netlist: &Netlist, assignment: &[(NetId, Value)]) -> Vec<Value> {
    let mut values = vec![Value::X; netlist.num_nets()];
    for &(net, value) in assignment {
        values[net.index()] = value;
    }
    let order = desync_netlist::analysis::topological_order(netlist).expect("acyclic");
    for cell_id in order {
        let cell = netlist.cell(cell_id);
        let inputs: Vec<Value> = cell.inputs.iter().map(|&i| values[i.index()]).collect();
        values[cell.output.index()] = evaluate(cell.kind, &inputs);
    }
    values
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// After settling, the event-driven simulator agrees with direct boolean
    /// evaluation on every net of a combinational netlist, for any input
    /// assignment and any order of input application.
    #[test]
    fn settled_simulation_matches_direct_evaluation(
        seed in 0u64..3000,
        gates in 1usize..30,
        bits in proptest::collection::vec(proptest::bool::ANY, 4),
    ) {
        let (netlist, inputs) = random_combinational(seed, gates);
        let library = CellLibrary::generic_90nm();
        let assignment: Vec<(NetId, Value)> = inputs
            .iter()
            .zip(bits.iter())
            .map(|(&n, &b)| (n, Value::from_bool(b)))
            .collect();

        let mut sim = EventSimulator::new(&netlist, &library, SimConfig::default());
        for &(net, value) in &assignment {
            sim.set(net, value);
        }
        sim.settle(1_000_000);

        let reference = reference_evaluate(&netlist, &assignment);
        for (id, _) in netlist.nets() {
            prop_assert_eq!(
                sim.value(id),
                reference[id.index()],
                "net {} differs", netlist.net(id).name
            );
        }
    }

    /// The simulator is deterministic: two runs with the same stimulus
    /// produce identical traces and activity counts.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..2000, gates in 1usize..25, cycles in 2usize..12) {
        let mut netlist = Netlist::new(format!("det_{seed}"));
        let clk = netlist.add_input("clk");
        let din = netlist.add_input("din");
        // A little random logic in front of a 3-stage shift register.
        let mut prev = din;
        for g in 0..gates {
            let out = netlist.add_net(format!("w{g}"));
            let kind = if g % 2 == 0 { CellKind::Not } else { CellKind::Buf };
            netlist.add_gate(format!("g{g}"), kind, &[prev], out).unwrap();
            prev = out;
        }
        let q0 = netlist.add_net("q0");
        let q1 = netlist.add_net("q1");
        let q2 = netlist.add_output("q2");
        netlist.add_dff("s0", prev, clk, q0).unwrap();
        netlist.add_dff("s1", q0, clk, q1).unwrap();
        netlist.add_dff("s2", q1, clk, q2).unwrap();

        let library = CellLibrary::generic_90nm();
        let stim = VectorSource::pseudo_random(vec![din], seed);
        let run = |cycles: usize| {
            let mut tb = SyncTestbench::new(&netlist, &library, SimConfig::default()).unwrap();
            tb.run(cycles, 4_000.0, &stim)
        };
        let a = run(cycles);
        let b = run(cycles);
        prop_assert_eq!(&a.flow_trace, &b.flow_trace);
        prop_assert_eq!(a.activity.total_transitions(), b.activity.total_transitions());
        prop_assert_eq!(a.duration_ps, b.duration_ps);
    }

    /// A chain of flip-flops behaves as a shift register under the
    /// synchronous testbench: stage k's stream is stage k-1's delayed by one.
    #[test]
    fn flip_flop_chain_shifts(seed in 0u64..2000, stages in 2usize..6, cycles in 4usize..16) {
        let mut netlist = Netlist::new("shift");
        let clk = netlist.add_input("clk");
        let din = netlist.add_input("din");
        let mut prev = din;
        for s in 0..stages {
            let q = netlist.add_net(format!("q{s}"));
            netlist.add_dff(format!("r{s}"), prev, clk, q).unwrap();
            prev = q;
        }
        netlist.mark_output(prev);
        let library = CellLibrary::generic_90nm();
        let stim = VectorSource::pseudo_random(vec![din], seed);
        let mut tb = SyncTestbench::new(&netlist, &library, SimConfig::default()).unwrap();
        let run = tb.run(cycles, 3_000.0, &stim);
        for s in 1..stages {
            let upstream = run.flow_trace.stream(&format!("r{}", s - 1)).unwrap();
            let downstream = run.flow_trace.stream(&format!("r{s}")).unwrap();
            prop_assert_eq!(&downstream[1..], &upstream[..upstream.len() - 1]);
        }
    }

    /// Activity counters never exceed the number of committed events and
    /// grow monotonically with simulated cycles.
    #[test]
    fn activity_grows_with_cycles(seed in 0u64..1000, cycles in 2usize..10) {
        let mut netlist = Netlist::new("act");
        let clk = netlist.add_input("clk");
        let q = netlist.add_net("q");
        let d = netlist.add_net("d");
        netlist.add_gate("inv", CellKind::Not, &[q], d).unwrap();
        netlist.add_dff("r", d, clk, q).unwrap();
        netlist.mark_output(q);
        let library = CellLibrary::generic_90nm();
        let stim = VectorSource::constant(vec![]);
        let short = {
            let mut tb = SyncTestbench::new(&netlist, &library, SimConfig::default()).unwrap();
            tb.run(cycles, 4_000.0, &stim)
        };
        let long = {
            let mut tb = SyncTestbench::new(&netlist, &library, SimConfig::default()).unwrap();
            tb.run(cycles * 2, 4_000.0, &stim)
        };
        prop_assert!(long.activity.total_transitions() >= short.activity.total_transitions());
        prop_assert!(long.duration_ps > short.duration_ps);
        let _ = seed;
    }
}
