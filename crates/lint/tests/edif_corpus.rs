//! The linter over the on-disk EDIF corpus: the known-good example design
//! must come out clean, and each `lint_*.edif` fixture in the netlist
//! crate's malformed corpus must produce exactly the defect it was built to
//! exhibit — with a concrete witness. CI runs the `desync_lint` binary over
//! the same files; this test pins the library-level verdicts the binary's
//! exit codes are derived from.

use desync_lint::{lint_design, LintCode, LintReport, Severity};
use desync_netlist::{from_edif, Netlist};

fn load(relative: &str) -> Netlist {
    let path = format!("{}/{relative}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    from_edif(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn lint(relative: &str) -> LintReport {
    lint_design(&load(relative))
}

#[test]
fn the_example_pipeline_is_clean() {
    let report = lint("../../examples/data/pipeline_4x8.edif");
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.num_errors(), 0);
}

#[test]
fn multi_driver_fixture_reports_nl001_with_both_drivers() {
    let report = lint("../netlist/tests/data/lint_multi_driver.edif");
    assert!(!report.is_clean(), "{report}");
    let d = report.find(LintCode::MultiDrivenNet).expect("NL001 fires");
    assert_eq!(d.subject.as_str(), "w");
    let drivers: Vec<_> = d.witness.iter().map(|s| s.as_str()).collect();
    assert_eq!(
        drivers,
        vec!["g0", "g1"],
        "witness lists drivers in id order"
    );
    // NL001 is the only error: the fixture isolates one defect.
    assert!(report.errors().all(|d| d.code == LintCode::MultiDrivenNet));
}

#[test]
fn floating_input_fixture_reports_nl002_on_the_ghost_net() {
    let report = lint("../netlist/tests/data/lint_floating_input.edif");
    assert!(!report.is_clean(), "{report}");
    let d = report.find(LintCode::FloatingInput).expect("NL002 fires");
    assert_eq!(d.subject.as_str(), "ghost");
    assert!(report.errors().all(|d| d.code == LintCode::FloatingInput));
}

#[test]
fn comb_loop_fixture_reports_nl005_with_the_canonical_cycle() {
    let report = lint("../netlist/tests/data/lint_comb_loop.edif");
    assert!(!report.is_clean(), "{report}");
    let d = report
        .find(LintCode::CombinationalCycle)
        .expect("NL005 fires");
    let cycle: Vec<_> = d.witness.iter().map(|s| s.as_str()).collect();
    assert_eq!(cycle, vec!["la", "lb"], "canonical rotation, id order");
    assert!(report
        .errors()
        .all(|d| d.code == LintCode::CombinationalCycle));
}

#[test]
fn corpus_verdicts_are_bit_identical_across_runs() {
    for fixture in [
        "../../examples/data/pipeline_4x8.edif",
        "../netlist/tests/data/lint_multi_driver.edif",
        "../netlist/tests/data/lint_floating_input.edif",
        "../netlist/tests/data/lint_comb_loop.edif",
    ] {
        let first = lint(fixture);
        for _ in 0..3 {
            assert_eq!(lint(fixture), first, "{fixture}");
        }
        assert_eq!(first.to_json(), lint(fixture).to_json(), "{fixture}");
    }
}

#[test]
fn corpus_json_has_the_stable_schema_shape() {
    let json = lint("../netlist/tests/data/lint_multi_driver.edif").to_json();
    assert!(json.starts_with(r#"{"schema":"desync-lint/1""#), "{json}");
    for key in [
        r#""clean":false"#,
        r#""errors":1"#,
        r#""diagnostics":["#,
        r#""code":"NL001""#,
        r#""severity":"error""#,
        r#""witness":["g0","g1"]"#,
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn every_corpus_error_carries_a_checkable_witness_or_subject() {
    for fixture in [
        "../netlist/tests/data/lint_multi_driver.edif",
        "../netlist/tests/data/lint_floating_input.edif",
        "../netlist/tests/data/lint_comb_loop.edif",
    ] {
        let netlist = load(fixture);
        let report = lint_design(&netlist);
        for d in report.diagnostics.iter() {
            assert!(!d.subject.as_str().is_empty(), "{fixture}: {d}");
            if d.severity() == Severity::Error {
                // Witness names must resolve against the design they came
                // from: every named net or cell exists.
                for name in d.witness.iter().map(|s| s.as_str()) {
                    let known =
                        netlist.find_net(name).is_some() || netlist.find_cell(name).is_some();
                    assert!(known, "{fixture}: unknown witness name {name}");
                }
            }
        }
    }
}
