//! Static verification of netlists and desynchronization control networks.
//!
//! The paper's central claim is that desynchronization correctness is
//! provable *statically*: the control network is a marked graph whose
//! liveness and safety follow from structural theorems, not from
//! simulation. This crate is the toolkit's static layer — a unified pass
//! framework producing typed [`Diagnostic`]s with stable codes, severity
//! levels and concrete *witnesses* (the exact net, cell, cycle or component
//! that proves the verdict), rendered for humans via `Display` and for
//! machines via [`LintReport::to_json`] (schema `desync-lint/1`).
//!
//! Every pass is linear — O(V + E) over nets, cells and pins, or places and
//! transitions — and every traversal runs in id order, so verdicts and
//! witnesses are bit-identical across runs, processes and thread counts.
//! That makes reports safe to cache by [`structural
//! hash`](desync_netlist::Netlist::structural_hash) and to compare with
//! `==`.
//!
//! # Pass catalog
//!
//! **Netlist suite** ([`lint_netlist`]):
//!
//! | Code | Severity | Checks | Witness |
//! |-------|---------|--------|---------|
//! | NL001 | error | net with more than one driver | driver cells |
//! | NL002 | error | net read / exposed as output but never driven | reading cells |
//! | NL003 | warning | net never read by a cell or output | driving cell |
//! | NL004 | warning | cell that cannot reach any primary output | — |
//! | NL005 | error | combinational cycle | canonical cell cycle |
//! | NL006 | error | register clock/enable undriven | the clock net |
//! | NL007 | error | more than one clock net | the clock nets |
//! | NL008 | warning | duplicate / input-and-output ports | — |
//!
//! **Flow preconditions** ([`lint_flow_preconditions`]): FL001 (error, no
//! flip-flops to desynchronize), FL002 (error, design already latch-based).
//!
//! **Control-network suite** ([`lint_marked_graph`]): MG001 (error,
//! token-free cycle ⇒ not live), MG002 (error, cycle carrying more than one
//! token ⇒ not safe), MG003 (error, strong-connectivity component report).
//! These wrap the witness-producing proofs in
//! [`desync_mg::analysis`] — the same theorems `is_live`/`is_safe`
//! evaluate, upgraded from booleans to checkable cycles.
//!
//! # Example
//!
//! ```
//! use desync_lint::{lint_design, LintCode};
//! use desync_netlist::{CellKind, Netlist};
//!
//! let mut n = Netlist::new("bad");
//! let clk = n.add_input("clk");
//! let a = n.add_input("a");
//! let q = n.add_net("q");
//! let y = n.add_output("y");
//! n.add_dff("r0", a, clk, q).unwrap();
//! n.add_gate("g0", CellKind::Not, &[q], y).unwrap();
//! n.add_gate("g1", CellKind::Buf, &[a], q).unwrap(); // second driver of q
//!
//! let report = lint_design(&n);
//! assert!(!report.is_clean());
//! let d = report.find(LintCode::MultiDrivenNet).unwrap();
//! assert_eq!(d.subject.as_str(), "q");
//! assert!(report.to_json().starts_with("{\"schema\":\"desync-lint/1\""));
//! ```
//!
//! Machine-readable output for the report above:
//!
//! ```json
//! {"schema":"desync-lint/1","clean":false,"errors":1,"warnings":0,
//!  "diagnostics":[{"code":"NL001","severity":"error","subject":"q",
//!   "detail":"driven 2 times","witness":["r0","g1"]}]}
//! ```
//!
//! The `desync_lint` binary lints `.edif`/`.edf`/`.v` files from the
//! command line (`--json` for machine output) and exits nonzero when any
//! error-severity diagnostic fires — CI runs it over the checked-in
//! examples and the malformed-netlist corpus.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostic;
pub mod mg_passes;
pub mod netlist_passes;

pub use diagnostic::{Diagnostic, LintCode, LintReport, Severity};
pub use mg_passes::lint_marked_graph;
pub use netlist_passes::{lint_flow_preconditions, lint_netlist};

use desync_netlist::Netlist;

/// Runs every pass that applies before the flow touches a design: the full
/// netlist suite plus the flow preconditions.
///
/// This is the report the flow's `lint` pre-flight stage caches and the
/// service's admission control consults; [`LintReport::is_clean`] decides
/// whether the design is admitted.
pub fn lint_design(netlist: &Netlist) -> LintReport {
    let mut report = lint_netlist(netlist);
    report.merge(lint_flow_preconditions(netlist));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellKind;

    #[test]
    fn lint_design_merges_both_suites() {
        // A combinational-only netlist with a dead net: NL003 (warning)
        // from the netlist suite, FL001 (error) from the preconditions.
        let mut n = Netlist::new("comb");
        let a = n.add_input("a");
        let y = n.add_output("y");
        let dead = n.add_net("dead");
        n.add_gate("g", CellKind::Not, &[a], y).unwrap();
        n.add_gate("gd", CellKind::Not, &[a], dead).unwrap();
        let report = lint_design(&n);
        assert!(report.has(LintCode::DeadNet));
        assert!(report.has(LintCode::NoRegisters));
        assert!(!report.is_clean());
        assert_eq!(report.num_errors(), 1);
    }
}
