//! Command-line front door to the static verification layer.
//!
//! ```text
//! desync_lint [--json] <design.edif|design.edf|design.v>...
//! ```
//!
//! Lints each file with the full pre-flow suite ([`desync_lint::lint_design`])
//! and prints either a human-readable report or one `desync-lint/1` JSON
//! object per file (`--json`). Exit status: `0` when every file is clean
//! (warnings allowed), `1` when any error-severity diagnostic fires, `2`
//! when a file cannot be read or parsed.

use desync_lint::lint_design;
use desync_netlist::edif::from_edif;
use desync_netlist::verilog::from_verilog;
use desync_netlist::Netlist;
use std::path::Path;
use std::process::ExitCode;

fn load(path: &Path) -> Result<Netlist, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{}`: {e}", path.display()))?;
    match path.extension().and_then(|x| x.to_str()) {
        Some("edif") | Some("edf") => from_edif(&text).map_err(|e| e.to_string()),
        Some("v") => from_verilog(&text).map_err(|e| e.to_string()),
        other => Err(format!(
            "unsupported input extension {other:?} (expected .edif, .edf or .v)"
        )),
    }
}

/// Escapes a path for embedding in the JSON wrapper object.
fn json_path(path: &Path) -> String {
    let mut out = String::from("\"");
    for c in path.display().to_string().chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn main() -> ExitCode {
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: desync_lint [--json] <design.edif|design.edf|design.v>...");
                return ExitCode::SUCCESS;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: desync_lint [--json] <design.edif|design.edf|design.v>...");
        return ExitCode::from(2);
    }

    let mut worst = 0u8;
    for file in &files {
        let path = Path::new(file);
        let netlist = match load(path) {
            Ok(n) => n,
            Err(e) => {
                if json {
                    println!(
                        "{{\"schema\":\"desync-lint/1\",\"file\":{},\"error\":true}}",
                        json_path(path)
                    );
                }
                eprintln!("{}: error: {e}", path.display());
                worst = worst.max(2);
                continue;
            }
        };
        let report = lint_design(&netlist);
        if json {
            // Wrap the report object with the file it describes.
            let body = report.to_json();
            let rest = body
                .strip_prefix("{\"schema\":\"desync-lint/1\"")
                .expect("report schema prefix");
            println!(
                "{{\"schema\":\"desync-lint/1\",\"file\":{}{rest}",
                json_path(path)
            );
        } else if report.diagnostics.is_empty() {
            println!("{}: clean", path.display());
        } else {
            print!("{}: {report}", path.display());
        }
        if !report.is_clean() {
            worst = worst.max(1);
        }
    }
    ExitCode::from(worst)
}
