//! The control-network pass suite (`MG001`–`MG003`).
//!
//! These passes turn the structural marked-graph theorems of the
//! desynchronization paper into witness-carrying diagnostics: instead of a
//! bare `is_live() == false`, the report names the exact token-free cycle
//! (as a sequence of transition labels) that proves the control network can
//! deadlock.

use crate::diagnostic::{Diagnostic, LintCode, LintReport};
use desync_mg::analysis::{multi_token_cycle, strongly_connected_components, token_free_cycle};
use desync_mg::{MarkedGraph, PlaceId};
use desync_netlist::Symbol;

/// Transition labels along a cycle of places, interned for the diagnostic.
fn cycle_labels(graph: &MarkedGraph, places: &[PlaceId]) -> Vec<Symbol> {
    places
        .iter()
        .map(|&p| Symbol::from(graph.transition(graph.place(p).from).label.as_str()))
        .collect()
}

/// Runs the control-network pass suite on a marked graph.
///
/// An empty graph is vacuously clean (the flow-precondition pass `FL001`
/// reports designs with nothing to control). Witnesses are canonical: the
/// underlying analyses traverse in id order and rotate cycles to their
/// minimum place id, so the same graph always produces the same report.
pub fn lint_marked_graph(graph: &MarkedGraph) -> LintReport {
    let mut report = LintReport::new();
    if graph.is_empty() {
        return report;
    }

    // MG001: a token-free cycle proves the network is not live (Commoner).
    if let Some(witness) = token_free_cycle(graph) {
        let labels = cycle_labels(graph, &witness.places);
        report.push(
            Diagnostic::new(
                LintCode::TokenFreeCycle,
                labels[0],
                format!(
                    "token-free cycle through {} places: the control network can deadlock",
                    witness.places.len()
                ),
            )
            .with_witness(labels),
        );
    }

    // MG002: a cycle carrying more than one token proves the network is not
    // safe (for live, strongly connected graphs).
    if let Some(witness) = multi_token_cycle(graph) {
        let labels = cycle_labels(graph, &witness.places);
        report.push(
            Diagnostic::new(
                LintCode::MultiTokenCycle,
                labels[0],
                format!(
                    "cycle through {} places carries {} tokens: handshake places can overflow",
                    witness.places.len(),
                    witness.tokens
                ),
            )
            .with_witness(labels),
        );
    }

    // MG003: component report when the graph is not strongly connected. The
    // witness lists the transitions of the smallest component — the most
    // actionable fragment to reconnect.
    let components = strongly_connected_components(graph);
    if components.len() > 1 {
        let smallest = components
            .iter()
            .min_by_key(|c| (c.len(), c[0]))
            .expect("at least two components");
        let labels: Vec<Symbol> = smallest
            .iter()
            .map(|&t| Symbol::from(graph.transition(t).label.as_str()))
            .collect();
        report.push(
            Diagnostic::new(
                LintCode::NotStronglyConnected,
                labels[0],
                format!(
                    "control network splits into {} strongly connected components; \
                     smallest has {} transition(s)",
                    components.len(),
                    smallest.len()
                ),
            )
            .with_witness(labels),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ring a -> b -> c -> a with the given tokens per place.
    fn ring(tokens: [u32; 3]) -> MarkedGraph {
        let mut g = MarkedGraph::new();
        let a = g.add_transition("a+");
        let b = g.add_transition("b+");
        let c = g.add_transition("c+");
        g.add_place(a, b, tokens[0], 1.0);
        g.add_place(b, c, tokens[1], 1.0);
        g.add_place(c, a, tokens[2], 1.0);
        g
    }

    #[test]
    fn live_safe_ring_is_clean() {
        let report = lint_marked_graph(&ring([1, 0, 0]));
        assert!(report.diagnostics.is_empty(), "{report}");
        assert!(lint_marked_graph(&MarkedGraph::new()).is_clean());
    }

    #[test]
    fn token_free_ring_reports_the_cycle_labels() {
        let report = lint_marked_graph(&ring([0, 0, 0]));
        let d = report.find(LintCode::TokenFreeCycle).expect("MG001 fires");
        let labels: Vec<_> = d.witness.iter().map(|s| s.as_str()).collect();
        assert_eq!(labels, vec!["a+", "b+", "c+"], "canonical label order");
        assert_eq!(d.subject.as_str(), "a+");
        assert!(!report.is_clean());
    }

    #[test]
    fn overloaded_ring_reports_the_token_count() {
        let report = lint_marked_graph(&ring([1, 1, 1]));
        let d = report.find(LintCode::MultiTokenCycle).expect("MG002 fires");
        assert!(d.detail.contains("carries 3 tokens"), "{}", d.detail);
        assert_eq!(d.witness.len(), 3);
        assert!(
            !report.has(LintCode::TokenFreeCycle),
            "the overloaded ring is live"
        );
    }

    #[test]
    fn disconnected_graph_reports_the_smallest_component() {
        let mut g = ring([1, 0, 0]);
        let d = g.add_transition("d+");
        let a = g.find_transition("a+").unwrap();
        g.add_place(a, d, 1, 1.0);
        let report = lint_marked_graph(&g);
        let diag = report
            .find(LintCode::NotStronglyConnected)
            .expect("MG003 fires");
        let labels: Vec<_> = diag.witness.iter().map(|s| s.as_str()).collect();
        assert_eq!(labels, vec!["d+"], "the dangling transition is the witness");
        assert!(diag.detail.contains("2 strongly connected components"));
    }

    #[test]
    fn verdicts_are_bit_identical_across_runs() {
        let g = ring([0, 2, 0]);
        let first = lint_marked_graph(&g);
        for _ in 0..20 {
            assert_eq!(lint_marked_graph(&g), first);
        }
    }
}
