//! The netlist pass suite (`NL001`–`NL008`) and the flow-precondition pass
//! (`FL001`/`FL002`).
//!
//! Every pass is linear in the netlist size — O(V + E) over nets, cells and
//! pins — and every traversal iterates in id order, so the findings (and
//! their witnesses) are a pure function of the netlist: bit-identical
//! across runs, processes and thread counts.

use crate::diagnostic::{Diagnostic, LintCode, LintReport};
use desync_netlist::analysis::find_combinational_cycle;
use desync_netlist::{CellId, Netlist, PinRole};
use std::collections::VecDeque;

/// Runs the full netlist pass suite.
///
/// Passes run in code order (`NL001` first); within a pass, findings are
/// emitted in net/cell id order.
pub fn lint_netlist(netlist: &Netlist) -> LintReport {
    let mut report = LintReport::new();
    let num_nets = netlist.num_nets();

    // Shared maps, built once: drivers per net, reader role per net.
    let mut drivers: Vec<Vec<CellId>> = vec![Vec::new(); num_nets];
    for (id, cell) in netlist.cells() {
        drivers[cell.output.index()].push(id);
    }
    let mut is_input = vec![false; num_nets];
    for &n in netlist.inputs() {
        is_input[n.index()] = true;
    }
    let mut is_output = vec![false; num_nets];
    for &n in netlist.outputs() {
        is_output[n.index()] = true;
    }
    // Data readers exclude clock/enable pins; those are checked by the
    // register-clocking pass (NL006) so a floating clock is reported once,
    // from the register's perspective.
    let mut data_readers: Vec<Vec<CellId>> = vec![Vec::new(); num_nets];
    let mut any_reader = vec![false; num_nets];
    for (id, cell) in netlist.cells() {
        for (pin, &net) in cell.inputs.iter().enumerate() {
            any_reader[net.index()] = true;
            if cell.pin_role(pin) == PinRole::Data {
                data_readers[net.index()].push(id);
            }
        }
    }

    // NL001: multi-driven nets. A primary input counts as a driver.
    for (id, net) in netlist.nets() {
        let cells = &drivers[id.index()];
        let total = cells.len() + usize::from(is_input[id.index()]);
        if total > 1 {
            let also_input = if is_input[id.index()] {
                " (including the primary input)"
            } else {
                ""
            };
            report.push(
                Diagnostic::new(
                    LintCode::MultiDrivenNet,
                    net.name,
                    format!("driven {total} times{also_input}"),
                )
                .with_witness(cells.iter().map(|&c| netlist.cell(c).name).collect()),
            );
        }
    }

    // NL002: floating reads — a net consumed by a data pin or exposed as a
    // primary output, with no cell driver and no primary-input backing.
    for (id, net) in netlist.nets() {
        let i = id.index();
        if drivers[i].is_empty() && !is_input[i] && (!data_readers[i].is_empty() || is_output[i]) {
            let what = match (data_readers[i].len(), is_output[i]) {
                (0, _) => "exposed as a primary output but never driven".to_string(),
                (n, false) => format!("read by {n} cell input(s) but never driven"),
                (n, true) => {
                    format!("read by {n} cell input(s) and a primary output but never driven")
                }
            };
            report.push(
                Diagnostic::new(LintCode::FloatingInput, net.name, what).with_witness(
                    data_readers[i]
                        .iter()
                        .map(|&c| netlist.cell(c).name)
                        .collect(),
                ),
            );
        }
    }

    // NL003 (warning): dead nets — nothing reads them, no output observes
    // them.
    for (id, net) in netlist.nets() {
        let i = id.index();
        if !any_reader[i] && !is_output[i] {
            let d = Diagnostic::new(
                LintCode::DeadNet,
                net.name,
                "never read by any cell or primary output".to_string(),
            );
            report.push(d.with_witness(drivers[i].iter().map(|&c| netlist.cell(c).name).collect()));
        }
    }

    // NL004 (warning): unreachable cells — backward reachability from the
    // primary outputs over the driver relation.
    let mut net_seen = vec![false; num_nets];
    let mut cell_seen = vec![false; netlist.num_cells()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &out in netlist.outputs() {
        if !net_seen[out.index()] {
            net_seen[out.index()] = true;
            queue.push_back(out.index());
        }
    }
    while let Some(net) = queue.pop_front() {
        for &d in &drivers[net] {
            if !cell_seen[d.index()] {
                cell_seen[d.index()] = true;
                for &input in &netlist.cell(d).inputs {
                    if !net_seen[input.index()] {
                        net_seen[input.index()] = true;
                        queue.push_back(input.index());
                    }
                }
            }
        }
    }
    for (id, cell) in netlist.cells() {
        if !cell_seen[id.index()] {
            report.push(Diagnostic::new(
                LintCode::UnreachableCell,
                cell.name,
                "no path from its output to any primary output".to_string(),
            ));
        }
    }

    // NL005: combinational cycle, with the canonical cycle as witness.
    if let Some(cycle) = find_combinational_cycle(netlist) {
        let names: Vec<_> = cycle.iter().map(|&c| netlist.cell(c).name).collect();
        report.push(
            Diagnostic::new(
                LintCode::CombinationalCycle,
                names[0],
                format!("combinational cycle through {} cells", cycle.len()),
            )
            .with_witness(names),
        );
    }

    // NL006: registers whose clock/enable net is undriven and not a
    // primary input.
    for (_, cell) in netlist.sequential_cells() {
        let Some(ctl) = cell.clock_net().or_else(|| cell.enable_net()) else {
            continue;
        };
        let i = ctl.index();
        if drivers[i].is_empty() && !is_input[i] {
            report.push(
                Diagnostic::new(
                    LintCode::UnclockedRegister,
                    cell.name,
                    format!(
                        "clock/enable net `{}` has no driver and is not a primary input",
                        netlist.net(ctl).name.as_str()
                    ),
                )
                .with_witness(vec![netlist.net(ctl).name]),
            );
        }
    }

    // NL007: multiple clock nets (the flow desynchronizes single-clock
    // designs).
    let clocks = netlist.clock_nets();
    if clocks.len() > 1 {
        report.push(
            Diagnostic::new(
                LintCode::MultipleClocks,
                netlist.name_symbol(),
                format!("flip-flops are clocked by {} distinct nets", clocks.len()),
            )
            .with_witness(clocks.iter().map(|&n| netlist.net(n).name).collect()),
        );
    }

    // NL008: primary-port sanity — duplicate port entries and nets declared
    // both input and output.
    let mut seen = vec![false; num_nets];
    for &n in netlist.inputs() {
        if seen[n.index()] {
            report.push(Diagnostic::new(
                LintCode::PortSanity,
                netlist.net(n).name,
                "listed more than once as a primary input".to_string(),
            ));
        }
        seen[n.index()] = true;
    }
    seen.iter_mut().for_each(|s| *s = false);
    for &n in netlist.outputs() {
        if seen[n.index()] {
            report.push(Diagnostic::new(
                LintCode::PortSanity,
                netlist.net(n).name,
                "listed more than once as a primary output".to_string(),
            ));
        }
        seen[n.index()] = true;
        if is_input[n.index()] {
            report.push(Diagnostic::new(
                LintCode::PortSanity,
                netlist.net(n).name,
                "declared both a primary input and a primary output".to_string(),
            ));
        }
    }

    report
}

/// The flow-precondition pass: certifies that a structurally sound netlist
/// is something the desynchronization flow can actually process.
///
/// `FL001` fires when there are no flip-flops (nothing to convert into
/// latch pairs); `FL002` when the design already contains level-sensitive
/// latches (the flow starts from a flip-flop-based synchronous circuit).
/// The multi-clock precondition is covered by `NL007`.
pub fn lint_flow_preconditions(netlist: &Netlist) -> LintReport {
    let mut report = LintReport::new();
    if netlist.num_flip_flops() == 0 {
        report.push(Diagnostic::new(
            LintCode::NoRegisters,
            netlist.name_symbol(),
            "no flip-flops: the flow needs at least one register to desynchronize".to_string(),
        ));
    }
    if netlist.num_latches() > 0 {
        report.push(
            Diagnostic::new(
                LintCode::AlreadyLatchBased,
                netlist.name_symbol(),
                format!(
                    "{} level-sensitive latch(es) present: the flow expects a flip-flop design",
                    netlist.num_latches()
                ),
            )
            .with_witness(netlist.latches().map(|(_, c)| c.name).take(8).collect()),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use desync_netlist::CellKind;

    /// A minimal clean design: clk -> dff -> inv -> output.
    fn clean() -> Netlist {
        let mut n = Netlist::new("clean");
        let clk = n.add_input("clk");
        let a = n.add_input("a");
        let q = n.add_net("q");
        let y = n.add_output("y");
        n.add_dff("r0", a, clk, q).unwrap();
        n.add_gate("g0", CellKind::Not, &[q], y).unwrap();
        n
    }

    #[test]
    fn clean_design_is_clean() {
        let report = lint_netlist(&clean());
        assert!(report.is_clean(), "{report}");
        assert!(report.diagnostics.is_empty(), "{report}");
        assert!(lint_flow_preconditions(&clean()).is_clean());
    }

    #[test]
    fn multi_driven_net_names_all_drivers() {
        let mut n = clean();
        let a = n.find_net("a").unwrap();
        let q = n.find_net("q").unwrap();
        n.add_gate("dup", CellKind::Buf, &[a], q).unwrap();
        let report = lint_netlist(&n);
        let d = report.find(LintCode::MultiDrivenNet).expect("NL001 fires");
        assert_eq!(d.subject.as_str(), "q");
        let names: Vec<_> = d.witness.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["r0", "dup"], "drivers in cell-id order");
        assert!(d.detail.contains("driven 2 times"), "{}", d.detail);
    }

    #[test]
    fn primary_input_counts_as_a_driver() {
        let mut n = clean();
        let a = n.find_net("a").unwrap();
        let clk = n.find_net("clk").unwrap();
        n.add_gate("drv", CellKind::Buf, &[clk], a).unwrap();
        let report = lint_netlist(&n);
        let d = report.find(LintCode::MultiDrivenNet).expect("NL001 fires");
        assert_eq!(d.subject.as_str(), "a");
        assert!(d.detail.contains("primary input"), "{}", d.detail);
    }

    #[test]
    fn floating_read_and_floating_output() {
        let mut n = clean();
        let ghost = n.add_net("ghost");
        let y2 = n.add_net("y2");
        n.add_gate("g1", CellKind::Buf, &[ghost], y2).unwrap();
        n.mark_output(y2);
        let report = lint_netlist(&n);
        let d = report.find(LintCode::FloatingInput).expect("NL002 fires");
        assert_eq!(d.subject.as_str(), "ghost");
        assert_eq!(d.witness.len(), 1);
        assert_eq!(d.witness[0].as_str(), "g1");

        let mut n = clean();
        let dangling = n.add_net("dangling");
        n.mark_output(dangling);
        let report = lint_netlist(&n);
        let d = report.find(LintCode::FloatingInput).expect("NL002 fires");
        assert_eq!(d.subject.as_str(), "dangling");
        assert!(d.detail.contains("primary output"), "{}", d.detail);
    }

    #[test]
    fn dead_net_and_unreachable_cell_warn_only() {
        let mut n = clean();
        let scratch = n.add_net("scratch");
        let a = n.find_net("a").unwrap();
        n.add_gate("island", CellKind::Buf, &[a], scratch).unwrap();
        let report = lint_netlist(&n);
        assert!(report.is_clean(), "dead logic is a warning, not an error");
        let dead = report.find(LintCode::DeadNet).expect("NL003 fires");
        assert_eq!(dead.subject.as_str(), "scratch");
        assert_eq!(dead.witness[0].as_str(), "island");
        let unreachable = report.find(LintCode::UnreachableCell).expect("NL004 fires");
        assert_eq!(unreachable.subject.as_str(), "island");
    }

    #[test]
    fn combinational_cycle_witness_is_canonical() {
        let mut n = clean();
        let u = n.add_net("u");
        let v = n.add_net("v");
        let a = n.find_net("a").unwrap();
        n.add_gate("la", CellKind::And, &[a, v], u).unwrap();
        n.add_gate("lb", CellKind::Buf, &[u], v).unwrap();
        let report = lint_netlist(&n);
        let d = report
            .find(LintCode::CombinationalCycle)
            .expect("NL005 fires");
        let names: Vec<_> = d.witness.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["la", "lb"], "cycle rotated to the minimum id");
        assert_eq!(d.subject.as_str(), "la");
        // Stable across repeated runs.
        assert_eq!(lint_netlist(&n), report);
    }

    #[test]
    fn undriven_clock_reports_the_register_not_the_net() {
        let mut n = Netlist::new("badclk");
        let a = n.add_input("a");
        let clk = n.add_net("clk_int");
        let q = n.add_output("q");
        n.add_dff("r0", a, clk, q).unwrap();
        let report = lint_netlist(&n);
        let d = report
            .find(LintCode::UnclockedRegister)
            .expect("NL006 fires");
        assert_eq!(d.subject.as_str(), "r0");
        assert_eq!(d.witness[0].as_str(), "clk_int");
        assert!(
            !report.has(LintCode::FloatingInput),
            "clock pins are NL006's job, not NL002's: {report}"
        );
    }

    #[test]
    fn two_clock_domains_fire_nl007() {
        let mut n = Netlist::new("twoclk");
        let c1 = n.add_input("c1");
        let c2 = n.add_input("c2");
        let a = n.add_input("a");
        let q1 = n.add_output("q1");
        let q2 = n.add_output("q2");
        n.add_dff("r1", a, c1, q1).unwrap();
        n.add_dff("r2", a, c2, q2).unwrap();
        let report = lint_netlist(&n);
        let d = report.find(LintCode::MultipleClocks).expect("NL007 fires");
        let names: Vec<_> = d.witness.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["c1", "c2"]);
    }

    #[test]
    fn net_that_is_both_input_and_output_fires_nl008() {
        let mut n = clean();
        let a = n.find_net("a").unwrap();
        n.mark_output(a);
        let report = lint_netlist(&n);
        let d = report.find(LintCode::PortSanity).expect("NL008 fires");
        assert_eq!(d.subject.as_str(), "a");
        assert!(
            report.is_clean(),
            "a feedthrough port is suspicious but handled by the flow"
        );
    }

    #[test]
    fn flow_preconditions() {
        let mut comb = Netlist::new("comb");
        let a = comb.add_input("a");
        let y = comb.add_output("y");
        comb.add_gate("g", CellKind::Not, &[a], y).unwrap();
        let report = lint_flow_preconditions(&comb);
        assert!(report.has(LintCode::NoRegisters));
        assert!(!report.is_clean());

        let mut latched = Netlist::new("latched");
        let en = latched.add_input("en");
        let d = latched.add_input("d");
        let q = latched.add_output("q");
        latched.add_latch("l0", d, en, q, true).unwrap();
        let report = lint_flow_preconditions(&latched);
        assert!(report.has(LintCode::AlreadyLatchBased));
        assert!(
            report.has(LintCode::NoRegisters),
            "latches are not flip-flops"
        );
        let d = report.find(LintCode::AlreadyLatchBased).unwrap();
        assert_eq!(d.witness[0].as_str(), "l0");
    }
}
