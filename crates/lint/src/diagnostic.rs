//! The typed diagnostic model: stable lint codes, severities, and reports
//! with human ([`fmt::Display`]) and machine-readable ([`LintReport::to_json`])
//! renderings.
//!
//! Subjects and witnesses are interned [`Symbol`]s — a diagnostic carries
//! `u32` handles, and the strings materialize only when a report is
//! rendered. Reports are plain data (`Clone + PartialEq + Eq`), so verdicts
//! can be cached, compared bit-for-bit across runs and thread counts, and
//! shipped inside service errors.

use desync_netlist::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a diagnostic is.
///
/// Errors make a design non-desynchronizable (or structurally meaningless)
/// and reject it at service admission; warnings are reported but do not
/// block the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but not blocking.
    Warning,
    /// The design is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of a lint pass.
///
/// Codes are part of the machine-readable output contract: once published
/// they never change meaning. `NL…` codes come from the netlist pass suite,
/// `MG…` from the marked-graph (control network) suite and `FL…` from the
/// flow-precondition pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// `NL001` — a net with more than one driver (cells and/or a primary
    /// input).
    MultiDrivenNet,
    /// `NL002` — a net read by a cell data pin or exposed as a primary
    /// output, but driven by nothing.
    FloatingInput,
    /// `NL003` — a net that nothing reads and no primary output observes.
    DeadNet,
    /// `NL004` — a cell whose output can never reach a primary output.
    UnreachableCell,
    /// `NL005` — a cycle in the combinational core, with the canonical
    /// cycle as witness.
    CombinationalCycle,
    /// `NL006` — a register whose clock/enable net has no driver and is not
    /// a primary input.
    UnclockedRegister,
    /// `NL007` — registers clocked by more than one distinct net.
    MultipleClocks,
    /// `NL008` — malformed primary ports (duplicate or input-and-output
    /// nets).
    PortSanity,
    /// `MG001` — the control network has a token-free cycle and can
    /// deadlock (non-live).
    TokenFreeCycle,
    /// `MG002` — a control-network cycle carries more than one token
    /// (unsafe).
    MultiTokenCycle,
    /// `MG003` — the control network is not strongly connected.
    NotStronglyConnected,
    /// `FL001` — the flow needs at least one flip-flop to desynchronize.
    NoRegisters,
    /// `FL002` — the design already contains level-sensitive latches.
    AlreadyLatchBased,
}

impl LintCode {
    /// The stable textual code, e.g. `"NL001"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::MultiDrivenNet => "NL001",
            LintCode::FloatingInput => "NL002",
            LintCode::DeadNet => "NL003",
            LintCode::UnreachableCell => "NL004",
            LintCode::CombinationalCycle => "NL005",
            LintCode::UnclockedRegister => "NL006",
            LintCode::MultipleClocks => "NL007",
            LintCode::PortSanity => "NL008",
            LintCode::TokenFreeCycle => "MG001",
            LintCode::MultiTokenCycle => "MG002",
            LintCode::NotStronglyConnected => "MG003",
            LintCode::NoRegisters => "FL001",
            LintCode::AlreadyLatchBased => "FL002",
        }
    }

    /// The severity this code reports at.
    ///
    /// Dead logic (`NL003`/`NL004`) and odd-but-harmless port declarations
    /// (`NL008` — a feedthrough net declared both input and output, or a
    /// duplicated port entry) are warnings: the flow handles such designs
    /// correctly, they are merely suspicious. Everything else breaks a flow
    /// precondition or a structural invariant and reports as an error.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::DeadNet | LintCode::UnreachableCell | LintCode::PortSanity => {
                Severity::Warning
            }
            _ => Severity::Error,
        }
    }

    /// One-line description of what the pass checks.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::MultiDrivenNet => "net has multiple drivers",
            LintCode::FloatingInput => "net is read but never driven",
            LintCode::DeadNet => "net is never read",
            LintCode::UnreachableCell => "cell output never reaches a primary output",
            LintCode::CombinationalCycle => "combinational cycle",
            LintCode::UnclockedRegister => "register clock/enable is undriven",
            LintCode::MultipleClocks => "multiple clock nets",
            LintCode::PortSanity => "malformed primary ports",
            LintCode::TokenFreeCycle => "control network is not live",
            LintCode::MultiTokenCycle => "control network is not safe",
            LintCode::NotStronglyConnected => "control network is not strongly connected",
            LintCode::NoRegisters => "no flip-flops to desynchronize",
            LintCode::AlreadyLatchBased => "design is already latch-based",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One finding of a lint pass.
///
/// Every diagnostic names a concrete *subject* (the offending net, cell or
/// graph transition) and, where the verdict is proved by a structure rather
/// than a single object, a *witness*: the names along a cycle, the drivers
/// of a multi-driven net, the transitions of a disconnected component.
/// Witnesses are canonical — the same design produces the identical
/// diagnostic byte-for-byte on every run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which pass fired.
    pub code: LintCode,
    /// The primary offending object (interned name).
    pub subject: Symbol,
    /// Proof structure: names along the cycle / drivers / component.
    pub witness: Vec<Symbol>,
    /// Human-oriented specifics (counts, roles); never required to
    /// interpret the finding mechanically.
    pub detail: String,
}

impl Diagnostic {
    /// Creates a diagnostic with an empty witness.
    pub fn new(code: LintCode, subject: Symbol, detail: impl Into<String>) -> Self {
        Self {
            code,
            subject,
            witness: Vec::new(),
            detail: detail.into(),
        }
    }

    /// Attaches a witness (builder style).
    pub fn with_witness(mut self, witness: Vec<Symbol>) -> Self {
        self.witness = witness;
        self
    }

    /// The severity of this diagnostic (a pure function of the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] `{}`: {}",
            self.severity(),
            self.code.code(),
            self.subject.as_str(),
            self.detail
        )?;
        if !self.witness.is_empty() {
            write!(f, " | witness: ")?;
            for (i, w) in self.witness.iter().enumerate() {
                if i > 0 {
                    f.write_str(" -> ")?;
                }
                f.write_str(w.as_str())?;
            }
        }
        Ok(())
    }
}

/// The result of running a pass suite: an ordered list of diagnostics.
///
/// Order is deterministic (pass order, then subject id order), so two
/// reports for the same design compare equal with `==`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends all findings of `other`.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Whether the design passed: no error-severity findings (warnings are
    /// allowed).
    pub fn is_clean(&self) -> bool {
        self.num_errors() == 0
    }

    /// Number of error-severity findings.
    pub fn num_errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn num_warnings(&self) -> usize {
        self.diagnostics.len() - self.num_errors()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Whether any finding fired with `code`.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The first finding with `code`, if any.
    pub fn find(&self, code: LintCode) -> Option<&Diagnostic> {
        self.diagnostics.iter().find(|d| d.code == code)
    }

    /// Approximate heap footprint in bytes, for weight-accounted caches.
    pub fn weight(&self) -> usize {
        64 + self
            .diagnostics
            .iter()
            .map(|d| 64 + d.detail.len() + d.witness.len() * 4)
            .sum::<usize>()
    }

    /// Machine-readable rendering, schema `desync-lint/1`:
    ///
    /// ```json
    /// {"schema":"desync-lint/1","clean":false,"errors":1,"warnings":0,
    ///  "diagnostics":[{"code":"NL001","severity":"error","subject":"n1",
    ///                  "detail":"...","witness":["g0","g1"]}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.diagnostics.len() * 96);
        out.push_str("{\"schema\":\"desync-lint/1\"");
        out.push_str(&format!(
            ",\"clean\":{},\"errors\":{},\"warnings\":{}",
            self.is_clean(),
            self.num_errors(),
            self.num_warnings()
        ));
        out.push_str(",\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"subject\":{},\"detail\":{},\"witness\":[",
                d.code.code(),
                d.severity(),
                json_string(d.subject.as_str()),
                json_string(&d.detail)
            ));
            for (j, w) in d.witness.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(w.as_str()));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "lint: clean");
        }
        writeln!(
            f,
            "lint: {} error(s), {} warning(s)",
            self.num_errors(),
            self.num_warnings()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Escapes `s` as a JSON string literal (with the quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LintReport {
        let mut r = LintReport::new();
        r.push(
            Diagnostic::new(LintCode::MultiDrivenNet, "n1".into(), "driven 2 times")
                .with_witness(vec!["g0".into(), "g1".into()]),
        );
        r.push(Diagnostic::new(
            LintCode::DeadNet,
            "scratch".into(),
            "never read",
        ));
        r
    }

    #[test]
    fn severity_is_a_function_of_the_code() {
        assert_eq!(LintCode::MultiDrivenNet.severity(), Severity::Error);
        assert_eq!(LintCode::DeadNet.severity(), Severity::Warning);
        assert_eq!(LintCode::PortSanity.severity(), Severity::Warning);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            LintCode::MultiDrivenNet,
            LintCode::FloatingInput,
            LintCode::DeadNet,
            LintCode::UnreachableCell,
            LintCode::CombinationalCycle,
            LintCode::UnclockedRegister,
            LintCode::MultipleClocks,
            LintCode::PortSanity,
            LintCode::TokenFreeCycle,
            LintCode::MultiTokenCycle,
            LintCode::NotStronglyConnected,
            LintCode::NoRegisters,
            LintCode::AlreadyLatchBased,
        ];
        let mut codes: Vec<_> = all.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "no two passes share a code");
        assert_eq!(LintCode::MultiDrivenNet.code(), "NL001");
        assert_eq!(LintCode::TokenFreeCycle.code(), "MG001");
        assert_eq!(LintCode::NoRegisters.code(), "FL001");
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.num_errors(), 1);
        assert_eq!(r.num_warnings(), 1);
        assert!(!r.is_clean(), "an error makes the report dirty");
        assert!(r.has(LintCode::MultiDrivenNet));
        assert!(!r.has(LintCode::CombinationalCycle));
        assert!(LintReport::new().is_clean());
        let warn_only = LintReport {
            diagnostics: vec![Diagnostic::new(LintCode::DeadNet, "x".into(), "never read")],
        };
        assert!(warn_only.is_clean(), "warnings alone keep the report clean");
    }

    #[test]
    fn display_renders_code_subject_and_witness() {
        let text = sample().to_string();
        assert!(text.contains("error[NL001] `n1`: driven 2 times"), "{text}");
        assert!(text.contains("witness: g0 -> g1"), "{text}");
        assert!(text.contains("warning[NL003]"), "{text}");
    }

    #[test]
    fn json_shape_and_escaping() {
        let r = sample();
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"desync-lint/1\""), "{json}");
        assert!(json.contains("\"clean\":false"), "{json}");
        assert!(json.contains("\"errors\":1"), "{json}");
        assert!(json.contains("\"code\":\"NL001\""), "{json}");
        assert!(json.contains("\"witness\":[\"g0\",\"g1\"]"), "{json}");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn reports_compare_bit_identically() {
        assert_eq!(sample(), sample());
        assert_eq!(sample().to_json(), sample().to_json());
    }
}
