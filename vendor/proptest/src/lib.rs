//! Offline stub of `proptest`.
//!
//! A deterministic sampling harness with the API subset this workspace uses:
//! the `proptest!` macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range/`Just`/`prop_oneof!`/`collection::vec`/`bool::ANY`
//! strategies, and the `prop_assert*` / `prop_assume!` macros. Each test
//! body runs for [`ProptestConfig::cases`] pseudo-random samples seeded from
//! the test name, so failures are reproducible. No shrinking is performed —
//! the stub reports the first failing sample as-is.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Why a single sampled case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the sample; it is not counted as a case.
    Reject,
    /// An assertion failed; the harness panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant (mirrors `TestCaseError::fail`).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Result type of one sampled test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration; `cases` and `max_rejects` are honoured by the
/// stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted samples to run per test.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test gives up.
    pub max_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 96,
            max_rejects: 4096,
        }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so runs are reproducible.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: state | 1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The stub samples without shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy yielding one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives sampled from.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// An empty choice; combine with [`OneOf::with`].
    pub fn new() -> Self {
        OneOf {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn with(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<T> Default for OneOf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_u64() as usize % self.options.len().max(1);
        self.options[idx].sample(rng)
    }
}

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` (mirrors `collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.next_u64() as usize % span;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: each `fn` runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness $cfg; $($rest)*);
    };
    (@harness $cfg:expr; $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < config.cases && rejected < config.max_rejects {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => rejected += 1,
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!("property `{}` failed after {} cases: {}",
                                   stringify!($name), accepted, message)
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@harness $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current sample (not counted as a case) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.with($strategy))+
    };
}
