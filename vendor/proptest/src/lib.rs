//! Offline stub of `proptest`.
//!
//! A deterministic sampling harness with the API subset this workspace uses:
//! the `proptest!` macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range/`Just`/`prop_oneof!`/`collection::vec`/`bool::ANY`
//! strategies, and the `prop_assert*` / `prop_assume!` macros. Each test
//! body runs for [`ProptestConfig::cases`] pseudo-random samples seeded from
//! the test name, so failures are reproducible.
//!
//! On failure the harness performs **minimal shrinking**: integer-range,
//! `collection::vec`, `Just` and `prop_oneof!` strategies propose smaller
//! candidates ([`Strategy::shrink`]), the failing sample is greedily
//! reduced while it keeps failing, and the panic reports the shrunk
//! counterexample next to the original failure. A `prop_oneof!` shrinks by
//! first *jumping* to a canonical simpler alternative ([`Strategy::canonical`],
//! e.g. a `Just` branch's fixed value) and then shrinking within every
//! branch whose domain contains the candidate ([`Strategy::contains`]).
//! Strategies without a `shrink` implementation (`bool::ANY`, float
//! ranges) report the failing sample as-is, like the real crate with
//! shrinking disabled.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Why a single sampled case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the sample; it is not counted as a case.
    Reject,
    /// An assertion failed; the harness panics with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant (mirrors `TestCaseError::fail`).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Result type of one sampled test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Harness configuration; `cases` and `max_rejects` are honoured by the
/// stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted samples to run per test.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the test gives up.
    pub max_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 96,
            max_rejects: 4096,
        }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so runs are reproducible.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: state | 1 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator, optionally able to propose smaller variants of a
/// failing value.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
    /// Proposes *simpler* candidates for `value` (each still inside the
    /// strategy's domain), most aggressive first. The harness keeps the
    /// first candidate that still fails and repeats until no candidate
    /// fails. The default is no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// The canonical "simplest" value of this strategy, if it has one
    /// ([`Just`] returns its fixed value). [`OneOf`] uses it to propose
    /// *jumping* to a simpler alternative while shrinking — the analogue of
    /// the real crate shrinking a union towards its earlier branches.
    fn canonical(&self) -> Option<Self::Value> {
        None
    }

    /// Whether `value` lies inside this strategy's domain, used by
    /// [`OneOf`] to keep cross-branch shrink candidates inside the union's
    /// domain. The conservative default accepts everything (strategies
    /// that cannot cheaply decide membership never *produce*
    /// out-of-domain candidates themselves).
    fn contains(&self, value: &Self::Value) -> bool {
        let _ = value;
        true
    }
}

/// Greedily shrinks a failing `value`: as long as some candidate from
/// [`Strategy::shrink`] still fails `check`, adopt it (and its failure
/// message) and continue from there. Returns the minimal failing value, its
/// failure message and the number of successful shrink steps.
///
/// Used by the [`proptest!`] harness; public so strategy shrinkers can be
/// tested directly.
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    mut message: String,
    check: &impl Fn(&S::Value) -> TestCaseResult,
) -> (S::Value, String, usize) {
    let mut steps = 0usize;
    // A generous cap so a pathological shrinker can never loop forever.
    const MAX_STEPS: usize = 4096;
    'outer: while steps < MAX_STEPS {
        for candidate in strategy.shrink(&value) {
            if let Err(TestCaseError::Fail(msg)) = check(&candidate) {
                value = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate fails: `value` is locally minimal
    }
    (value, message, steps)
}

/// Ties a checker closure's parameter type to `strategy`'s value type, so
/// the [`proptest!`] harness can define the closure before the first sample
/// exists without tripping closure-parameter inference.
pub fn check_fn<S: Strategy, F: Fn(&S::Value) -> TestCaseResult>(_strategy: &S, check: F) -> F {
    check
}

/// Strategy yielding one fixed value (mirrors `proptest::strategy::Just`).
///
/// A `Just` is already minimal, so [`Strategy::shrink`] proposes nothing;
/// its contribution to shrinking is [`Strategy::canonical`] — inside a
/// [`prop_oneof!`], a failing value can *jump* to a `Just` branch's fixed
/// value, the simplest member of the union.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + PartialEq> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
    fn canonical(&self) -> Option<T> {
        Some(self.0.clone())
    }
    fn contains(&self, value: &T) -> bool {
        *value == self.0
    }
}

/// The integer shrink ladder shared by both range strategies: jump to the
/// lower bound, then bisect towards it, then step down by one — aggressive
/// first, so the greedy harness converges in O(log value) adopted steps.
macro_rules! int_shrink_candidates {
    ($start:expr, $value:expr) => {{
        let start = $start;
        let value = $value;
        let mut out = Vec::new();
        if value > start {
            out.push(start);
            let mid = start + (value - start) / 2;
            if mid != start && mid != value {
                out.push(mid);
            }
            let prev = value - 1;
            if prev != start && prev != mid {
                out.push(prev);
            }
        }
        out
    }};
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(self.start, *value)
            }
            fn contains(&self, value: &$t) -> bool {
                self.start <= *value && *value < self.end
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(*self.start(), *value)
            }
            fn contains(&self, value: &$t) -> bool {
                self.start() <= value && value <= self.end()
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        // Pull towards the range start, most aggressive candidate first:
        // the start itself, then `value - span/2`, `value - span/4`, ...
        // Adopting the first still-failing candidate halves the distance to
        // the failure boundary each step (a greedy bisection), so the
        // harness converges geometrically instead of stalling at 2x the
        // boundary the way a bare midpoint candidate would.
        let mut out = Vec::new();
        if *value > self.start {
            out.push(self.start);
            let mut delta = (*value - self.start) / 2.0;
            while delta > 0.0 && out.len() < 48 {
                let candidate = *value - delta;
                if candidate > self.start && candidate < *value {
                    out.push(candidate);
                }
                let next = delta / 2.0;
                if next == delta {
                    break;
                }
                delta = next;
            }
        }
        out
    }
    fn canonical(&self) -> Option<f64> {
        (self.start < self.end).then_some(self.start)
    }
    fn contains(&self, value: &f64) -> bool {
        self.start <= *value && *value < self.end
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
    fn canonical(&self) -> Option<T> {
        (**self).canonical()
    }
    fn contains(&self, value: &T) -> bool {
        (**self).contains(value)
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives sampled from.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// An empty choice; combine with [`OneOf::with`].
    pub fn new() -> Self {
        OneOf {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn with(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(strategy));
        self
    }
}

impl<T> Default for OneOf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone + PartialEq> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_u64() as usize % self.options.len().max(1);
        self.options[idx].sample(rng)
    }
    /// Shrinks a union value in two tiers, most aggressive first:
    ///
    /// 1. **Branch jumps** — the canonical value of every branch *earlier*
    ///    than the first branch whose domain contains the value (e.g. a
    ///    `Just` alternative listed before the producing range), mirroring
    ///    the real crate's shrink towards earlier branches. Restricting
    ///    jumps to earlier branches keeps shrinking monotone: two failing
    ///    `Just` branches can never propose each other in both directions
    ///    and oscillate the greedy harness.
    /// 2. **In-branch shrinks** — every branch's shrink candidates for the
    ///    value, filtered through [`Strategy::contains`] so a branch that
    ///    could not have produced the candidate cannot push the
    ///    counterexample outside the union's domain.
    ///
    /// Candidates equal to the current value are dropped (a self-candidate
    /// would let the greedy harness loop without progress).
    fn shrink(&self, value: &T) -> Vec<T> {
        let mut out: Vec<T> = Vec::new();
        let mut push = |candidate: T| {
            if candidate != *value && !out.contains(&candidate) {
                out.push(candidate);
            }
        };
        // The branch the value is attributed to: the first whose domain
        // contains it (every branch is jumpable when none does — the value
        // came from outside the union, e.g. a caller-provided seed).
        let producer = self
            .options
            .iter()
            .position(|option| option.contains(value))
            .unwrap_or(self.options.len());
        for option in &self.options[..producer] {
            if let Some(canonical) = option.canonical() {
                push(canonical);
            }
        }
        for option in &self.options {
            for candidate in option.shrink(value) {
                if self.options.iter().any(|o| o.contains(&candidate)) {
                    push(candidate);
                }
            }
        }
        out
    }
    fn canonical(&self) -> Option<T> {
        self.options.iter().find_map(|option| option.canonical())
    }
    fn contains(&self, value: &T) -> bool {
        self.options.iter().any(|option| option.contains(value))
    }
}

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            // `false` is the simpler boolean, exactly as in the real crate.
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
        fn canonical(&self) -> Option<bool> {
            Some(false)
        }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size` (mirrors `collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.next_u64() as usize % span;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            // Length reductions first (halve towards the minimum, then drop
            // single elements), then element-wise shrinks via the element
            // strategy. Per-position work is capped so candidate lists stay
            // small on long vectors; the greedy harness revisits shorter
            // vectors with fresh candidates anyway.
            const POSITION_CAP: usize = 8;
            let min = self.size.min;
            let len = value.len();
            let mut out = Vec::new();
            if len > min {
                let half = (len + min) / 2; // keeps at least `min` elements
                if half < len {
                    out.push(value[..half].to_vec());
                    out.push(value[len - half..].to_vec());
                }
                for i in 0..len.min(POSITION_CAP) {
                    let mut shorter = value.clone();
                    shorter.remove(i);
                    out.push(shorter);
                }
            }
            for i in 0..len.min(POSITION_CAP) {
                for candidate in self.element.shrink(&value[i]).into_iter().take(2) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Tuple strategies: the [`proptest!`] harness bundles every argument's
/// strategy into one tuple strategy so one failing sample can be shrunk
/// per-component.
macro_rules! impl_tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone),+
        {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                // Sampled left to right, matching the historical per-arg
                // draw order so seeded runs reproduce old samples.
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

/// Glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests: each `fn` runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness $cfg; $($rest)*);
    };
    (@harness $cfg:expr; $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                // One tuple strategy over all arguments, so a failing sample
                // can be re-checked and shrunk as a unit.
                let strategy = ($(($strat),)*);
                let check = $crate::check_fn(&strategy, |__sample| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(__sample);
                    (move || { $body Ok(()) })()
                });
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < config.cases && rejected < config.max_rejects {
                    let sample = $crate::Strategy::sample(&strategy, &mut rng);
                    match check(&sample) {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => rejected += 1,
                        Err($crate::TestCaseError::Fail(message)) => {
                            let (minimal, message, shrink_steps) =
                                $crate::shrink_failure(&strategy, sample, message, &check);
                            panic!(
                                "property `{}` failed after {} cases: {}\n  \
                                 minimal failing input ({} shrink step(s)): {:?}",
                                stringify!($name), accepted, message, shrink_steps, minimal
                            )
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@harness $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current sample (not counted as a case) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.with($strategy))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_shrinking_finds_the_boundary_counterexample() {
        // Property: x < 17. Any failing sample must shrink to exactly 17.
        let strategy = (0usize..1000,);
        let check = |sample: &(usize,)| -> TestCaseResult {
            if sample.0 < 17 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("{} is too big", sample.0)))
            }
        };
        let (minimal, message, steps) =
            shrink_failure(&strategy, (900,), "900 is too big".to_string(), &check);
        assert_eq!(minimal, (17,), "greedy shrink must reach the boundary");
        assert!(steps > 0);
        assert_eq!(message, "17 is too big");
    }

    #[test]
    fn vec_shrinking_drops_irrelevant_elements_and_shrinks_the_rest() {
        // Property: no element >= 10. The minimal counterexample is `[10]`.
        let strategy = (collection::vec(0usize..100, 0..20),);
        let check = |sample: &(Vec<usize>,)| -> TestCaseResult {
            match sample.0.iter().find(|&&v| v >= 10) {
                None => Ok(()),
                Some(v) => Err(TestCaseError::fail(format!("offending element {v}"))),
            }
        };
        let failing = (vec![3, 42, 7, 99, 1, 0, 55],);
        let (minimal, message, steps) =
            shrink_failure(&strategy, failing, "seed".to_string(), &check);
        assert_eq!(minimal, (vec![10],), "minimal vec is one boundary element");
        assert!(steps > 0);
        assert_eq!(message, "offending element 10");
    }

    #[test]
    fn respects_the_minimum_vector_length() {
        let strategy = collection::vec(0usize..100, 3..6);
        let candidates = strategy.shrink(&vec![50, 60, 70]);
        assert!(candidates.iter().all(|c| c.len() >= 3), "{candidates:?}");
        // Element-wise shrinking still happens at the length floor.
        assert!(!candidates.is_empty());
    }

    #[test]
    fn oneof_shrinks_within_the_producing_union_domain() {
        // Property: x < 120. A failing sample from the high branch must
        // shrink to exactly 120, never leaving the union's domain
        // (candidates from the low branch are filtered by `contains`).
        let strategy = (prop_oneof![0usize..50, 100usize..200],);
        let check = |sample: &(usize,)| -> TestCaseResult {
            if sample.0 < 120 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("{} is too big", sample.0)))
            }
        };
        let (minimal, message, steps) =
            shrink_failure(&strategy, (180,), "180 is too big".to_string(), &check);
        assert_eq!(minimal, (120,), "greedy shrink must reach the boundary");
        assert!(steps > 0);
        assert_eq!(message, "120 is too big");
    }

    #[test]
    fn oneof_jumps_to_a_just_alternative() {
        // Property fails everywhere, so the minimum of the union — the
        // `Just(0)` branch — is the canonical counterexample the shrinker
        // must land on from any starting sample.
        let strategy = (prop_oneof![Just(0usize), 64usize..1000],);
        let check = |_: &(usize,)| -> TestCaseResult {
            Err(TestCaseError::fail("always fails".to_string()))
        };
        let (minimal, _, steps) =
            shrink_failure(&strategy, (800,), "always fails".to_string(), &check);
        assert_eq!(minimal, (0,), "the Just branch is the simplest member");
        assert!(steps > 0);
    }

    #[test]
    fn just_is_already_minimal_and_exposes_its_canonical_value() {
        let just = Just(7usize);
        assert_eq!(just.canonical(), Some(7));
        assert!(just.shrink(&7).is_empty());
        assert!(just.contains(&7));
        assert!(!just.contains(&8));
        // A union's canonical value is its first canonical branch. Branch
        // jumps are monotone (towards *earlier* branches only): the first
        // branch's value is already minimal and proposes nothing, so two
        // failing Just branches can never oscillate the greedy harness.
        let union = prop_oneof![Just(5usize), Just(6usize)];
        assert_eq!(union.canonical(), Some(5));
        assert_eq!(union.shrink(&5), Vec::<usize>::new());
        assert_eq!(union.shrink(&6), vec![5]);
        assert!(union.contains(&6));
        assert!(!union.contains(&7));
        // A value outside the whole union (caller-provided) may jump to
        // any canonical branch.
        assert_eq!(union.shrink(&9), vec![5, 6]);
    }

    #[test]
    fn oneof_shrinking_composes_with_the_harness() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
            fn union_boundary(x in prop_oneof![Just(0usize), 10usize..1000]) {
                prop_assert!(x < 17, "x = {x}");
            }
        }
        let panic = std::panic::catch_unwind(union_boundary)
            .expect_err("the property is falsifiable and must panic");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic message is a formatted string");
        // The boundary counterexample 17 lives in the range branch; the
        // Just(0) jump passes the property so greedy shrink settles at 17.
        assert!(message.contains("(17,)"), "{message}");
    }

    #[test]
    fn harness_panics_with_the_shrunk_counterexample() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
            fn boundary_property(x in 0usize..1000) {
                prop_assert!(x < 17, "x = {x}");
            }
        }
        let panic = std::panic::catch_unwind(boundary_property)
            .expect_err("the property is falsifiable and must panic");
        let message = panic
            .downcast_ref::<String>()
            .expect("panic message is a formatted string");
        assert!(message.contains("minimal failing input"), "{message}");
        assert!(message.contains("(17,)"), "{message}");
    }

    #[test]
    fn float_range_shrinks_to_the_boundary() {
        // Property: x < 250.0 over 0.0..1000.0. Greedy shrinking must pull
        // any failing sample down to (a hair above) the boundary.
        let strategy = 0.0f64..1000.0;
        let check = |x: &f64| -> TestCaseResult {
            if *x < 250.0 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("x = {x}")))
            }
        };
        let (minimal, _, steps) = shrink_failure(&strategy, 900.0, "seed".into(), &check);
        assert!(minimal >= 250.0, "shrunk value must still fail: {minimal}");
        assert!(
            minimal < 250.0 + 1e-6,
            "greedy halving must reach the boundary, got {minimal}"
        );
        assert!(steps > 0, "at least one shrink step must be taken");
        // Domain and canonical pins.
        assert!(strategy.contains(&0.0) && !strategy.contains(&1000.0));
        assert_eq!(strategy.canonical(), Some(0.0));
        assert!(strategy.shrink(&0.0).is_empty(), "the minimum is minimal");
    }

    #[test]
    fn bool_any_shrinks_true_to_false() {
        assert_eq!(bool::ANY.shrink(&true), vec![false]);
        assert!(bool::ANY.shrink(&false).is_empty());
        assert_eq!(bool::ANY.canonical(), Some(false));
        // End-to-end: a property that only fails on `true` must report the
        // original `true` (false passes, so shrinking keeps true) — and a
        // property failing on both must settle on `false`.
        let check_fails_on_true = |b: &bool| -> TestCaseResult {
            if *b {
                Err(TestCaseError::fail("true fails"))
            } else {
                Ok(())
            }
        };
        let (minimal, _, steps) =
            shrink_failure(&bool::ANY, true, "seed".into(), &check_fails_on_true);
        assert!(minimal, "false passes, so true is the minimal failure");
        assert_eq!(steps, 0);
        let check_fails_always =
            |_: &bool| -> TestCaseResult { Err(TestCaseError::fail("always")) };
        let (minimal, _, _) = shrink_failure(&bool::ANY, true, "seed".into(), &check_fails_always);
        assert!(!minimal, "always-failing property shrinks to false");
    }

    #[test]
    fn passing_properties_and_rejection_still_work() {
        proptest! {
            fn all_samples_pass(x in 0usize..50, v in collection::vec(0u64..9, 0..4)) {
                prop_assume!(x != 13);
                prop_assert!(x < 50);
                prop_assert!(v.iter().all(|&e| e < 9));
            }
        }
        all_samples_pass();
    }
}
