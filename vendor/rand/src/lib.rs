//! Offline stub of `rand` (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `SliceRandom::choose`. The generator is splitmix64-seeded xorshift64*,
//! which is deterministic per seed — all the workspace needs (it never
//! relies on matching the real `StdRng` stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait of the stub: a 64-bit generator plus the derived helpers.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`low..high` or `low..=high`).
    fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self.next_u64())
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Seeding constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`] to produce a `T`.
pub trait UniformRange<T> {
    /// Maps one raw 64-bit draw onto the range.
    fn sample(&self, raw: u64) -> T;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample(&self, raw: u64) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (raw % span) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample(&self, raw: u64) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (raw % span) as $t
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

/// Random selection from slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;
    /// Uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.next_u64() as usize % self.len())
        }
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles the seed so nearby seeds diverge.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Self {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Glob-import surface, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng, SliceRandom};
}
