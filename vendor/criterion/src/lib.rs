//! Offline stub of `criterion`.
//!
//! Times each benchmark closure over a fixed number of iterations and prints
//! the mean wall-time, using the criterion API subset this workspace uses
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input` and `sample_size`, and
//! `Bencher::iter`). No statistics, plots or baselines — just enough to make
//! `cargo bench` runnable and its log readable offline.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut label = name.into();
        let _ = write!(label, "/{parameter}");
        Self { label }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Runs one benchmark's closure; handed to the `bench_*` callbacks.
#[derive(Debug)]
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Entry point of the stub harness (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(id.into(), self.sample_size, f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id: BenchmarkId = id.into();
        run_one(
            BenchmarkId::from(format!("{}/{}", self.name, id.label)),
            self.sample_size,
            f,
        );
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: BenchmarkId, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iterations > 0 && bencher.elapsed > Duration::ZERO {
        let mean = bencher.elapsed / bencher.iterations as u32;
        println!(
            "{:<48} {:>12.3?} mean of {} iters",
            id.label, mean, bencher.iterations
        );
    } else {
        println!("{:<48} (closure never called Bencher::iter)", id.label);
    }
}

/// Bundles benchmark functions under one name (mirrors `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups (mirrors `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
