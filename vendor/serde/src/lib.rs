//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names this workspace imports. The
//! derive macros (re-exported from the stub `serde_derive`) expand to
//! nothing, and the marker traits exist so `T: Serialize` bounds could be
//! written; no code in the workspace serializes anything yet.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
