//! Offline stub of `serde_derive`.
//!
//! The real crate generates `Serialize`/`Deserialize` implementations; this
//! workspace only uses the derives as forward-compatibility markers (no code
//! serializes anything yet), so both derives expand to nothing. This keeps
//! every `#[derive(Serialize, Deserialize)]` in the tree compiling — for any
//! type, with any generics — without pulling in syn/quote.

use proc_macro::TokenStream;

/// Stub `Serialize` derive: expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Stub `Deserialize` derive: expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
